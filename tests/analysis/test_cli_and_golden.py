"""CLI contract and golden-JSON tests for ``python -m repro.analysis``."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import cli

SOURCE = '''
class Memo(JModel):
    title = CharField()
    priority = IntegerField()

    @staticmethod
    def jacqueline_get_public_title(memo):
        return str(memo.priority)

    @staticmethod
    @label_for("title")
    def restrict_title(memo, viewer):
        return getattr(viewer, "name", None) == "owner"
'''

GOLDEN = {
    "diagnostics": [],
    "policies": [
        {
            "model": "Memo",
            "group": "title",
            "fields": ["title"],
            "policy": "restrict_title",
            "shape": "equality-on-viewer",
            "atoms": [{"kind": "eq", "viewer": "viewer.name", "other": "owner"}],
            "predicate": {
                "atom": "eq",
                "lhs": {"viewer": "name", "default": None},
                "rhs": {"const": "owner"},
            },
            "opaque_reasons": [],
            "reads": [],
            "cross_record": False,
        }
    ],
    "read_sets": {
        "Memo.jacqueline_get_public_title": ["priority"],
        "Memo.restrict_title": [],
    },
    "summary": {"files": 1, "models": 1, "errors": 0, "warnings": 0},
}


def test_report_json_matches_the_golden_payload():
    report = cli.analyze_source(SOURCE, "memo.py")
    assert json.loads(report.to_json()) == GOLDEN


def test_cli_json_format_round_trips(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(SOURCE)
    assert cli.main([str(path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == GOLDEN


def test_cli_text_format_prints_the_summary_line(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(SOURCE)
    assert cli.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s), 1 model(s): 0 error(s), 0 warning(s)" in out


def test_missing_path_is_a_usage_error(capsys):
    assert cli.main(["definitely/not/here.py"]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err


def test_directory_walk_skips_caches_and_dedups(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    files = cli.collect_files([str(tmp_path), str(tmp_path / "pkg" / "a.py")])
    assert files == [str(tmp_path / "pkg" / "a.py")]


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_module_entry_point_runs(tmp_path, fmt):
    path = tmp_path / "memo.py"
    path.write_text(SOURCE)
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ, PYTHONPATH=os.path.join(repo_root, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(path), "--format", fmt],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    if fmt == "json":
        assert json.loads(proc.stdout) == GOLDEN


MIXED = SOURCE + '''

def render(memo):
    if memo.title:
        return "titled"
    return "untitled"
'''


def test_select_keeps_only_the_listed_codes(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(MIXED)
    # The fixture trips JQL006 (warning, name heuristic); selecting only
    # JQL004 filters it out and the run is clean even under --strict.
    assert cli.main([str(path), "--select", "JQL004", "--strict"]) == 0
    capsys.readouterr()
    assert cli.main([str(path), "--select", "JQL006", "--strict"]) == 1
    out = capsys.readouterr().out
    assert "JQL006" in out


def test_select_rejects_unknown_codes(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(SOURCE)
    assert cli.main([str(path), "--select", "JQL999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err and "JQL999" in err


def test_select_always_keeps_syntax_errors(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert cli.main([str(path), "--select", "JQL004"]) == 1
    out = capsys.readouterr().out
    assert "JQL000" in out


def test_baseline_suppresses_recorded_findings_ignoring_lines(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(MIXED)
    baseline = tmp_path / "baseline.json"
    assert cli.main([str(path), "--format", "json"]) == 0
    baseline.write_text(capsys.readouterr().out)
    # Accepted as baseline: the same findings no longer fail the run.
    assert cli.main([str(path), "--baseline", str(baseline), "--strict"]) == 0
    capsys.readouterr()
    # Shift every line: the fingerprint ignores lines, still suppressed.
    path.write_text("# moved\n\n\n" + MIXED)
    assert cli.main([str(path), "--baseline", str(baseline), "--strict"]) == 0
    capsys.readouterr()
    # A *new* finding is not in the baseline and fails the run.
    path.write_text(MIXED + '''

def render_again(memo):
    if memo.title:
        return "again"
    return ""
''')
    assert cli.main([str(path), "--baseline", str(baseline), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "render_again" in out or "JQL006" in out


def test_baseline_usage_errors_exit_2(tmp_path, capsys):
    path = tmp_path / "memo.py"
    path.write_text(SOURCE)
    assert cli.main([str(path), "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "no such baseline" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert cli.main([str(path), "--baseline", str(bad)]) == 2
    assert "bad baseline" in capsys.readouterr().err
