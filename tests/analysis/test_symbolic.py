"""Unit tests for the symbolic policy compiler (``repro.analysis.symbolic``).

Covers the typed abstract interpreter (source modelling, getattr
defaults, startswith/prefix atoms, TOP on unmodelled constructs),
normalization, the IR queries (``contains_top``, ``own_columns``), the
satisfiability decision procedure, and a golden-JSON regression pinning
the predicate IR of every demo application's policy.
"""

import json
import os

from repro.analysis import cli
from repro.analysis.facts import facts_for_source
from repro.analysis.symbolic import (
    And,
    Atom,
    Const,
    ConstVal,
    Not,
    Or,
    OwnColumn,
    Top,
    ViewerAttr,
    ViewerSelf,
    atom_text,
    compile_policy,
    contains_top,
    normalize,
    own_columns,
    predicate_json,
    predicate_text,
    unsatisfiable,
)

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))


def _compile(body: str):
    """Compile a one-group policy body over a small typed model."""
    source = f'''
class Doc(JModel):
    title = CharField(max_length=64)
    path = CharField(max_length=64, nullable=False, default="/")
    score = IntegerField()
    owner = ForeignKey("User")

    @staticmethod
    @label_for("title")
    def restrict(doc, viewer):
        return {body}
'''
    model = facts_for_source(source, "m.py").models[0]
    return compile_policy(model.groups[0], model)


def test_equality_on_viewer_attr_compiles_to_a_typed_atom():
    pred = _compile("doc.owner_id == viewer.jid")
    assert pred == Atom(
        "eq", OwnColumn("owner_id", "int"), ViewerAttr(("jid",))
    )


def test_getattr_default_is_carried_on_the_viewer_source():
    pred = _compile('getattr(viewer, "name", None) == "ada"')
    assert pred == Atom(
        "eq", ViewerAttr(("name",), True, None), ConstVal("ada")
    )


def test_startswith_compiles_to_a_prefix_atom_with_nullability():
    pred = _compile("doc.path.startswith(viewer.prefix)")
    assert pred == Atom(
        "prefix",
        OwnColumn("path", "text", nullable=False),
        ViewerAttr(("prefix",)),
    )


def test_boolean_structure_and_none_guard():
    pred = _compile("viewer is not None and doc.score >= 3")
    assert pred == And((
        Atom("not-null", ViewerSelf()),
        Atom("ge", OwnColumn("score", "int"), ConstVal(3)),
    ))


def test_unmodelled_constructs_become_top_not_errors():
    pred = _compile("mystery(doc)")
    assert contains_top(pred)
    assert "TOP" in predicate_text(pred)
    # TOP poisons the tree through connectives but never raises.
    assert contains_top(_compile("viewer is not None and mystery(doc)"))


def test_normalize_flattens_folds_and_cancels():
    nested = And((And((Const(True), Atom("truthy", OwnColumn("score")))),
                  Not(Not(Atom("not-null", ViewerSelf())))))
    flat = normalize(nested)
    assert flat == And((
        Atom("truthy", OwnColumn("score")),
        Atom("not-null", ViewerSelf()),
    ))
    assert normalize(Or((Const(False),))) == Const(False)
    assert normalize(Not(Atom("eq", OwnColumn("a"), ConstVal(1)))) == Atom(
        "ne", OwnColumn("a"), ConstVal(1)
    )


def test_own_columns_lists_the_row_reads():
    pred = _compile("doc.score > 2 and doc.path.startswith('/x')")
    assert own_columns(pred) == {"score", "path"}


def test_unsatisfiable_finds_conflicting_range_atoms():
    pred = _compile("doc.score > 5 and doc.score < 3")
    atoms = unsatisfiable(pred)
    assert atoms is not None
    assert sorted(atom_text(a) for a in atoms) == ["score < 3", "score > 5"]


def test_unsatisfiable_is_none_for_satisfiable_and_top():
    assert unsatisfiable(_compile("doc.score > 5")) is None
    assert unsatisfiable(_compile("mystery(doc) and doc.score > 5")) is None
    assert unsatisfiable(Const(False)) == []


def test_predicate_json_round_trips_through_json():
    pred = _compile('viewer is not None and doc.owner_id == viewer.jid')
    payload = predicate_json(pred)
    assert json.loads(json.dumps(payload)) == payload
    assert payload == {
        "and": [
            {"atom": "not-null", "lhs": {"viewer-self": True}},
            {
                "atom": "eq",
                "lhs": {"column": "owner_id", "type": "int", "nullable": True},
                "rhs": {"viewer": "jid"},
            },
        ]
    }


def test_demo_app_predicates_match_the_golden_json():
    """Golden regression: the compiled predicate IR of every policy of the
    four demo applications.  Regenerate (after inspecting the diff!) with::

        PYTHONPATH=src python -c "
        import json; from repro.analysis import cli
        r = cli.analyze_paths(['src/repro/apps'])
        print(json.dumps({f'{p[\\"model\\"]}.{p[\\"group\\"]}': p['predicate']
                          for p in r.policies}, indent=2, sort_keys=True))"
    """
    report = cli.analyze_paths([os.path.join(REPO, "src", "repro", "apps")])
    actual = {
        f"{rec['model']}.{rec['group']}": rec["predicate"]
        for rec in report.policies
    }
    with open(os.path.join(HERE, "golden_demo_predicates.json")) as handle:
        golden = json.load(handle)
    assert actual == golden
