"""Unit tests for read-set inference (repro.analysis.readsets)."""

from repro.analysis.facts import facts_for_source
from repro.analysis.readsets import (
    infer_method_reads,
    model_read_sets,
    public_read_columns,
    public_read_columns_for_model,
)


def _model(source):
    return facts_for_source(source, "m.py").models[0]


def _reads(source, method):
    model = _model(source)
    return infer_method_reads(model.methods[method], model)


DOC = '''
class Doc(JModel):
    title = CharField()
    priority = IntegerField()
    author = ForeignKey("User")

    def constant(self):
        return "[redacted]"

    def direct(self):
        return self.title

    def fk(self):
        return self.author_id

    def fk_attr(self):
        return self.author

    def fk_chain(self):
        return self.author.level

    def via_getattr(self):
        return getattr(self, "priority")

    def dynamic_getattr(self, name):
        return getattr(self, name)

    def identity(self, other):
        return self == other

    def membership(self, seen):
        return self in seen

    def query(self):
        return Doc.objects.get(author=self)

    def helper_call(self):
        return prefix(self)

    def method_call(self):
        return self.direct()

    def aliased(self):
        row = self
        return row.priority

    def escapes(self):
        return len(str(self))

    def bare(self):
        return self

    def loops(self):
        return self.loops_back()

    def loops_back(self):
        return self.loops()


def prefix(doc):
    return "doc: " + doc.title
'''


def test_constant_method_reads_nothing():
    assert _reads(DOC, "constant").report() == []


def test_direct_attribute_reads_its_column():
    assert _reads(DOC, "direct").report() == ["title"]


def test_foreign_key_reads_the_id_column():
    assert _reads(DOC, "fk").report() == ["author_id"]
    assert _reads(DOC, "fk_attr").report() == ["author_id"]


def test_foreign_key_chain_is_cross_record():
    reads = _reads(DOC, "fk_chain")
    assert reads.report() == ["author_id"]
    assert reads.cross_record


def test_constant_getattr_resolves():
    assert _reads(DOC, "via_getattr").report() == ["priority"]


def test_dynamic_getattr_is_top():
    reads = _reads(DOC, "dynamic_getattr")
    assert reads.top
    assert "getattr" in reads.top_reason


def test_identity_comparisons_read_jid():
    assert _reads(DOC, "identity").report() == ["jid"]
    assert _reads(DOC, "membership").report() == ["jid"]


def test_row_as_orm_filter_value_reads_jid_cross_record():
    reads = _reads(DOC, "query")
    assert reads.report() == ["jid"]
    assert reads.cross_record


def test_module_helper_is_inlined():
    assert _reads(DOC, "helper_call").report() == ["title"]


def test_same_class_method_call_is_inlined():
    assert _reads(DOC, "method_call").report() == ["title"]


def test_simple_aliases_are_tracked():
    assert _reads(DOC, "aliased").report() == ["priority"]


def test_row_escaping_into_unknown_call_is_top():
    reads = _reads(DOC, "escapes")
    assert reads.top
    assert "escapes" in reads.top_reason


def test_bare_row_use_is_top():
    assert _reads(DOC, "bare").top


def test_mutual_recursion_terminates():
    # Recursive helpers stop at the cycle; the result is the sound empty
    # set (the cycle body reads nothing but itself).
    assert not _reads(DOC, "loops").top


def test_model_read_sets_cover_public_methods_and_policies():
    model = _model('''
class Memo(JModel):
    title = CharField()
    priority = IntegerField()

    @staticmethod
    def jacqueline_get_public_title(memo):
        return str(memo.priority)

    @staticmethod
    @label_for("title")
    def restrict_title(memo, viewer):
        return viewer == memo
''')
    sets = model_read_sets(model)
    assert sets["jacqueline_get_public_title"].report() == ["priority"]
    assert sets["restrict_title"].report() == ["jid"]
    assert public_read_columns(model) == frozenset({"priority"})


def test_public_read_columns_top_is_none():
    model = _model('''
class Blob(JModel):
    data = CharField()

    @staticmethod
    def jacqueline_get_public_data(blob):
        return mystery(blob)
''')
    assert public_read_columns(model) is None


def test_live_model_entry_point_matches_static_inference():
    from repro.form import CharField, IntegerField, JModel

    class Ticket(JModel):
        subject = CharField(max_length=64)
        severity = IntegerField(default=0)

        @staticmethod
        def jacqueline_get_public_subject(ticket):
            return f"sev-{ticket.severity} ticket"

    assert public_read_columns_for_model(Ticket) == frozenset({"severity"})


def test_live_entry_point_never_raises():
    # A class with no _meta at all: inference fails, TOP (None) comes back.
    class NotAModel:
        pass

    assert public_read_columns_for_model(NotAModel) is None
