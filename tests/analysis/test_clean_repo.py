"""The repo's own applications and examples pass their own linter.

This is the same invocation CI runs (``python -m repro.analysis
src/repro/apps examples``); keeping it in tier-1 means a policy change
that trips a JQL rule fails fast, locally.
"""

import os

from repro.analysis.cli import analyze_paths

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _analyze():
    return analyze_paths([
        os.path.join(REPO_ROOT, "src", "repro", "apps"),
        os.path.join(REPO_ROOT, "examples"),
    ])


def test_repo_apps_and_examples_are_clean():
    report = _analyze()
    formatted = [d.format() for d in report.sorted_diagnostics()]
    assert report.errors == [], formatted
    assert report.warnings == [], formatted
    assert report.exit_code(strict=True) == 0


def test_every_app_model_got_analyzed():
    report = _analyze()
    names = set(report.models)
    assert {"Paper", "Review", "Event", "EventGuest", "HealthRecord"} <= names
