"""Classifier-atom round-tripping into the pushdown decision procedure.

Every policy shape :func:`repro.analysis.classify.classify_policy` emits
for the four demo applications must land the model in exactly one tier:

* ``direct`` -- the compiled symbolic predicate renders inline in the
  WHERE clause; a viewer-context query counts ``plan.policy_pushdown``
  and ``plan.policy_pushdown.direct``;
* ``indexable`` -- inline with prefix/range atoms; counts
  ``plan.policy_pushdown.indexable``;
* ``store`` -- the label-assignment-store subquery; counts
  ``plan.policy_pushdown`` with neither inline counter;
* ``opaque`` -- the Python path; counts
  ``plan.policy_pushdown.opaque_fallback``.

There is no silent fifth state: a policied model the planner skips
without a counter would mean a classifier shape the decision procedure
forgot.
"""

import datetime

import pytest

from repro import obs
from repro.apps.calendar.models import CALENDAR_MODELS, Event, UserProfile
from repro.apps.conf.models import CONF_MODELS, ConfUser, Paper
from repro.apps.course.models import COURSE_MODELS, Course, CourseUser
from repro.apps.health.models import HEALTH_MODELS, HealthRecord, HealthUser
from repro.cache.config import CacheConfig
from repro.db import Database
from repro.form import FORM, use_form, viewer_context
from repro.form.pushdown import profile_for

PUSHDOWN_SHAPES = {"viewer-independent", "equality-on-viewer", "symbolic"}
POLICIED_TIERS = {"direct", "indexable", "store", "opaque"}

APPS = {
    "conf": CONF_MODELS,
    "course": COURSE_MODELS,
    "health": HEALTH_MODELS,
    "calendar": CALENDAR_MODELS,
}


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _policied_models():
    for app, models in APPS.items():
        for model in models:
            if model._meta.policy_groups:
                yield app, model


def test_every_demo_policy_shape_round_trips():
    for app, model in _policied_models():
        profile = profile_for(model)
        # Exhaustive outcome at classification time: exactly one tier.
        assert profile.tier in POLICIED_TIERS, (app, model.__name__, profile)
        assert profile.eligible != profile.opaque, (app, model.__name__, profile)
        assert profile.eligible == (profile.tier != "opaque"), (
            app, model.__name__, profile,
        )
        # Every policy group got a shape (nothing skipped silently).
        assert set(profile.shapes) == {
            group.key for group in model._meta.policy_groups
        }, (app, model.__name__)
        if profile.eligible:
            assert set(profile.shapes.values()) <= PUSHDOWN_SHAPES, (
                app, model.__name__, profile.shapes,
            )
            if profile.tier in ("direct", "indexable"):
                assert profile.predicate is not None, (app, model.__name__)
        else:
            assert "opaque" in profile.shapes.values(), (
                app, model.__name__, profile.shapes,
            )


def test_demo_tiers_are_the_expected_ones():
    """The concrete assignment the docs and benchmarks talk about: the
    conf app's viewer model is direct, the multi-group models ride the
    store, and every cross-record policy is opaque."""
    tiers = {
        model.__name__: profile_for(model).tier
        for _app, model in _policied_models()
    }
    assert tiers == {
        "ConfUser": "direct",
        "Paper": "opaque",
        "Review": "store",
        "Course": "opaque",
        "Submission": "store",
        "HealthUser": "opaque",
        "HealthRecord": "opaque",
        "Event": "opaque",
        "EventGuest": "opaque",
    }


def _seed(app, form):
    """One viewer and one policied record per app, minimal fields."""
    if app == "conf":
        viewer = ConfUser.objects.create(
            name="ada", affiliation="a", email="a@x", level="normal"
        )
        Paper.objects.create(title="p", author=viewer)
        return viewer
    if app == "course":
        viewer = CourseUser.objects.create(name="ada", role="instructor")
        Course.objects.create(title="c", instructor=viewer)
        return viewer
    if app == "health":
        viewer = HealthUser.objects.create(
            name="ada", role="patient", email="a@x"
        )
        HealthRecord.objects.create(
            patient=viewer, doctor=viewer, diagnosis="d", notes="n",
            date=datetime.datetime(2016, 6, 13),
        )
        return viewer
    viewer = UserProfile.objects.create(name="ada", email="a@x")
    Event.objects.create(
        name="e", location="l", time=datetime.datetime(2016, 6, 13),
        description="d",
    )
    return viewer


@pytest.mark.parametrize("app", sorted(APPS))
def test_every_demo_query_is_counted_pushdown_or_fallback(app):
    form = FORM(Database(), cache_config=CacheConfig.disabled())
    form.register_all(APPS[app])
    with use_form(form):
        viewer = _seed(app, form)
        for model in APPS[app]:
            if not model._meta.policy_groups:
                continue
            with viewer_context(viewer):
                model.objects.all().fetch()  # warm probe/store population
            obs.reset()
            with obs.tracing(), viewer_context(viewer):
                model.objects.all().fetch()
            pushed = obs.totals.get("plan.policy_pushdown")
            fallback = obs.totals.get("plan.policy_pushdown.opaque_fallback")
            inline = {
                tier: obs.totals.get(f"plan.policy_pushdown.{tier}")
                for tier in ("direct", "indexable")
            }
            profile = profile_for(model)
            assert pushed + fallback >= 1, (app, model.__name__, profile)
            if profile.tier in ("direct", "indexable"):
                assert pushed >= 1, (app, model.__name__, profile)
                assert inline[profile.tier] >= 1, (app, model.__name__, inline)
            elif profile.tier == "store":
                assert pushed >= 1, (app, model.__name__, profile)
                assert inline == {"direct": 0, "indexable": 0}, (
                    app, model.__name__, inline,
                )
            else:
                assert fallback >= 1 and pushed == 0, (app, model.__name__)
