"""Per-rule fixtures: every JQL rule fires on its bad example (and the CLI
exits nonzero on it) and stays quiet on the corrected version."""

import pytest

from repro.analysis import cli

#: rule code -> (bad source that trips exactly it, strict? for exit code)
BAD = {
    "JQL001": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    @label_for("subject")
    def restrict(row, viewer):
        return False
''',
    "JQL002": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False
''',
    "JQL003": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        Audit.objects.create(note="leak")
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        row.title = "oops"
        return False
''',
    "JQL004": '''
class Doc(JModel):
    title = CharField()
    salary = IntegerField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "band %d" % (doc.salary // 10000)

    @staticmethod
    @label_for("title")
    def restrict_title(row, viewer):
        return False

    @staticmethod
    def jacqueline_get_public_salary(doc):
        return 0

    @staticmethod
    @label_for("salary")
    def restrict_salary(row, viewer):
        return False
''',
    "JQL005": '''
def sneak(record):
    record.jid = 99
    return record.jvars
''',
    "JQL006": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False


def render(doc):
    if doc.title:
        return "titled"
    return "untitled"
''',
    "JQL007": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc, extra):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row):
        return False
''',
    "JQL008": '''
class Doc(JModel):
    title = CharField()
    owner = ForeignKey("User")

    @staticmethod
    def jacqueline_get_public_title(doc):
        return doc.owner.name

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False
''',
    "JQL009": '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return mystery(doc)

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False
''',
    "JQL010": '''
class Doc(JModel):
    title = CharField()
    score = IntegerField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return row.score > 5 and row.score < 3
''',
}

#: Rules whose finding is warning severity (CLI needs --strict to fail).
WARNINGS = {"JQL002", "JQL006", "JQL008", "JQL009"}

CLEAN = '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return viewer == row
'''


@pytest.mark.parametrize("code", sorted(BAD))
def test_each_rule_fires_on_its_fixture(code):
    report = cli.analyze_source(BAD[code], f"{code.lower()}.py")
    assert code in {d.code for d in report.diagnostics}
    for diagnostic in report.diagnostics:
        if diagnostic.code == code:
            assert diagnostic.line > 0
            assert diagnostic.file == f"{code.lower()}.py"
            assert code in diagnostic.format()


@pytest.mark.parametrize("code", sorted(BAD))
def test_cli_exits_nonzero_on_each_fixture(code, tmp_path, capsys):
    path = tmp_path / f"{code.lower()}.py"
    path.write_text(BAD[code])
    argv = [str(path)] + (["--strict"] if code in WARNINGS else [])
    assert cli.main(argv) == 1
    out = capsys.readouterr().out
    assert code in out


def test_syntax_error_is_a_jql000_finding(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert cli.main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "JQL000" in out and "syntax error" in out


def test_clean_fixture_has_no_findings():
    report = cli.analyze_source(CLEAN, "clean.py")
    assert report.diagnostics == []
    assert report.exit_code(strict=True) == 0


def test_jql003_does_not_flag_bare_local_helpers():
    # A bare call named like a mutator ("update(...)" on nothing) is a
    # local helper, not an ORM/backend write.
    source = '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return update("x")
'''
    report = cli.analyze_source(source, "m.py")
    assert "JQL003" not in {d.code for d in report.diagnostics}


def test_jql006_quiet_inside_viewer_contexts():
    source = '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False


def render(doc, user):
    with viewer_context(user):
        if doc.title:
            return "titled"
    return "untitled"
'''
    report = cli.analyze_source(source, "m.py")
    assert "JQL006" not in {d.code for d in report.diagnostics}


TYPED_BRANCH = CLEAN + '''

def render():
    doc = Doc.objects.get(jid=1)
    if doc.title:
        return "titled"
    return "untitled"
'''


def test_jql006_typed_receiver_is_an_error():
    # The local is provably a Doc (bound from Doc.objects), so the branch
    # reads a faceted value for certain: error severity, no --strict needed.
    report = cli.analyze_source(TYPED_BRANCH, "m.py")
    [diag] = [d for d in report.diagnostics if d.code == "JQL006"]
    assert diag.severity.value == "error"
    assert diag.model == "Doc"
    assert report.exit_code() == 1


def test_jql006_direct_orm_chain_receiver_is_an_error():
    source = CLEAN + '''

def render():
    if Doc.objects.get(jid=1).title:
        return "titled"
    return "untitled"
'''
    report = cli.analyze_source(source, "m.py")
    [diag] = [d for d in report.diagnostics if d.code == "JQL006"]
    assert diag.severity.value == "error"


def test_jql006_typed_receiver_suppresses_the_name_heuristic():
    # ``note`` is provably a Note, whose ``title`` is unpolicied -- the
    # name heuristic must not fire on it.
    source = CLEAN + '''

class Note(JModel):
    title = CharField()


def render():
    note = Note.objects.get(jid=1)
    if note.title:
        return "titled"
    return "untitled"
'''
    report = cli.analyze_source(source, "m.py")
    assert "JQL006" not in {d.code for d in report.diagnostics}


def test_jql006_untyped_name_match_stays_a_warning():
    report = cli.analyze_source(BAD["JQL006"], "m.py")
    [diag] = [d for d in report.diagnostics if d.code == "JQL006"]
    assert diag.severity.value == "warning"


def test_jql010_reports_the_offending_atoms():
    report = cli.analyze_source(BAD["JQL010"], "m.py")
    [diag] = [d for d in report.diagnostics if d.code == "JQL010"]
    assert diag.severity.value == "error"
    assert "score > 5" in diag.message
    assert "score < 3" in diag.message


def test_jql010_flags_a_constant_false_policy():
    source = '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return False
'''
    report = cli.analyze_source(source, "m.py")
    [diag] = [d for d in report.diagnostics if d.code == "JQL010"]
    assert "constant-False" in diag.message


def test_jql010_stays_silent_on_top_predicates():
    # An unmodelled call puts a TOP in the conjunct; the decision
    # procedure is conservative around TOP subtrees and stays silent.
    source = '''
class Doc(JModel):
    title = CharField()

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    def restrict(row, viewer):
        return mystery(row) and row.title == "x" and row.title == "y"
'''
    report = cli.analyze_source(source, "m.py")
    assert "JQL010" not in {d.code for d in report.diagnostics}
