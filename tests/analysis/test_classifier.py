"""Policy-shape classification tests (repro.analysis.classify)."""

import os

from repro.analysis.classify import classify_module, classify_policy
from repro.analysis.facts import facts_for_path, facts_for_source

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _shape(source):
    module = facts_for_source(source, "m.py")
    model = module.models[0]
    return classify_policy(model.groups[0], model)


def test_viewer_independent_shape():
    shape = _shape('''
class Paper(JModel):
    title = CharField()

    @staticmethod
    @label_for("title")
    def restrict(paper, viewer):
        return phase() == "public"
''')
    assert shape["shape"] == "viewer-independent"
    assert shape["atoms"] == []
    assert shape["opaque_reasons"] == []


def test_equality_on_viewer_shape_with_atoms():
    shape = _shape('''
class Paper(JModel):
    title = CharField()
    author = ForeignKey("User")

    @staticmethod
    @label_for("title")
    def restrict(paper, viewer):
        return viewer is not None and viewer.jid == paper.author_id
''')
    assert shape["shape"] == "equality-on-viewer"
    assert [a["kind"] for a in shape["atoms"]] == ["is-not", "eq"]
    assert shape["atoms"][1]["viewer"] == "viewer.jid"
    assert shape["atoms"][1]["other"] == "paper.author_id"


def test_helper_with_getattr_inlines_to_equality():
    shape = _shape('''
def _is_staff(user):
    return getattr(user, "level", None) in ("pc", "chair")


class Paper(JModel):
    title = CharField()

    @staticmethod
    @label_for("title")
    def restrict(paper, viewer):
        return _is_staff(viewer)
''')
    assert shape["shape"] == "equality-on-viewer"
    assert shape["atoms"] == [
        {"kind": "in", "viewer": "user.level", "other": ["pc", "chair"]}
    ]


def test_viewer_as_query_filter_is_opaque():
    shape = _shape('''
class Event(JModel):
    name = CharField()

    @staticmethod
    @label_for("name")
    def restrict(event, viewer):
        return Guest.objects.get(event=event, guest=viewer) is not None
''')
    assert shape["shape"] == "opaque"
    assert any("query filter" in r for r in shape["opaque_reasons"])


def test_shape_record_carries_group_metadata_and_reads():
    shape = _shape('''
class Paper(JModel):
    title = CharField()
    author = ForeignKey("User")

    @staticmethod
    @label_for("title")
    def restrict(paper, viewer):
        return viewer == paper.author
''')
    assert shape["model"] == "Paper"
    assert shape["group"] == "title"
    assert shape["fields"] == ["title"]
    assert shape["policy"] == "restrict"
    assert shape["reads"] == ["author_id"]


def test_conf_app_policies_classify_as_verified():
    module = facts_for_path(
        os.path.join(REPO_ROOT, "src", "repro", "apps", "conf", "models.py")
    )
    shapes = {
        (s["model"], s["group"]): s["shape"] for s in classify_module(module)
    }
    assert shapes == {
        ("ConfUser", "email"): "equality-on-viewer",
        ("Paper", "author"): "opaque",
        ("Paper", "accepted"): "equality-on-viewer",
        ("Review", "reviewer"): "equality-on-viewer",
        ("Review", "contents"): "equality-on-viewer",
    }


def test_calendar_app_membership_policies_are_opaque():
    module = facts_for_path(
        os.path.join(REPO_ROOT, "src", "repro", "apps", "calendar", "models.py")
    )
    shapes = {
        (s["model"], s["group"]): s["shape"] for s in classify_module(module)
    }
    assert shapes[("Event", "name")] == "opaque"
    assert shapes[("EventGuest", "guest")] == "opaque"
