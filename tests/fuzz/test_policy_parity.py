"""Differential fuzzing: policy-pushdown tiers vs the Python pruning oracle.

Each iteration draws a random *program* -- creates, set-oriented updates
and deletes, guarded (pc) creates, viewer-context fetches, counts and
aggregates -- from a seeded stdlib ``random.Random``, then runs it once
per pushdown configuration on the same backend:

* ``"off"`` -- the Python Early Pruning path (the oracle);
* ``"store"`` -- pushdown capped at the label-store tier
  (``policy_pushdown_tier_cap = "store"``);
* ``"direct"`` -- uncapped: direct/indexable predicates render inline.

Every configuration must produce identical observables, and none may ever
leak a secret to the wrong viewer -- checked against the fetched rows'
own unpolicied columns (``owner_id``, ``path``), independent of any path.
The model set covers all inline tiers: ``FuzzDoc`` is the direct shape
(equality on the viewer's jid), ``FuzzOrgDoc`` the indexable shape
(``path.startswith(viewer.path)``), ``FuzzAudit`` stays store-only (its
policy queries another model).

On failure the seed is printed, the failing program is greedily shrunk,
and the repro is emitted as a paste-able test case calling
:func:`_assert_parity`.

``FUZZ_ITERATIONS`` (default 20 per backend; CI's nightly job runs 500)
and ``FUZZ_SEED`` tune the sweep from the environment.
"""

import os
import random

import pytest

from repro.cache.config import CacheConfig
from repro.core.labels import Label
from repro.db import Database, SqliteBackend
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class FuzzOwner(JModel):
    name = CharField(max_length=64)
    #: org-tree position; the prefix source of FuzzOrgDoc's policy
    path = CharField(max_length=32, nullable=False, default="/")


class FuzzDoc(JModel):
    """Equality-on-viewer, own-row-only policy: the direct tier."""

    owner = ForeignKey(FuzzOwner)
    title = CharField(max_length=128)
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[secret]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(doc, ctxt):
        return ctxt is not None and doc.owner_id == ctxt.jid


class FuzzOrgDoc(JModel):
    """Prefix-on-viewer policy over a non-nullable column: the indexable
    tier (org-tree visibility -- a doc is visible to viewers whose subtree
    contains it)."""

    path = CharField(max_length=32, nullable=False, default="/")
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(doc):
        return "[hidden]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(doc, ctxt):
        return ctxt is not None and doc.path.startswith(ctxt.path)


class FuzzAudit(JModel):
    """Eligible but broad: the policy queries another model's rows."""

    owner = ForeignKey(FuzzOwner)
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(audit):
        return "[redacted]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(audit, ctxt):
        owner = FuzzOwner.objects.get(jid=audit.owner_id)
        return owner is not None and ctxt is not None and owner.jid == ctxt.jid


MODELS = [FuzzOwner, FuzzDoc, FuzzOrgDoc, FuzzAudit]
AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")
ORG_PATHS = ("/", "/eng", "/eng/db", "/ops")
#: pushdown configurations compared pairwise against the "off" oracle
CONFIGS = ("off", "store", "direct")


# -- program generation --------------------------------------------------------------


def _gen_program(rng, length=16):
    """A random op list.  Every program opens with two owners so viewer
    and ownership choices are always well-defined."""
    program = [
        ("create_owner", "ada", "/eng"),
        ("create_owner", "bob", "/ops"),
    ]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.14:
            program.append(
                ("create_doc", rng.randrange(4), f"d{rng.randrange(100)}",
                 rng.randrange(10))
            )
        elif roll < 0.22:
            program.append(
                ("create_audit", rng.randrange(4), f"a{rng.randrange(100)}")
            )
        elif roll < 0.28:
            program.append(
                ("create_owner", f"o{rng.randrange(100)}",
                 ORG_PATHS[rng.randrange(len(ORG_PATHS))])
            )
        elif roll < 0.36:
            program.append(
                ("update_score", rng.randrange(10), rng.randrange(10))
            )
        elif roll < 0.42:
            program.append(("delete_docs", rng.randrange(10)))
        elif roll < 0.48:
            program.append(
                ("guarded_create", rng.randrange(4), f"g{rng.randrange(100)}")
            )
        elif roll < 0.56:
            program.append(
                ("create_orgdoc",
                 ORG_PATHS[rng.randrange(len(ORG_PATHS))],
                 f"b{rng.randrange(100)}")
            )
        elif roll < 0.64:
            program.append(("fetch_orgdocs", rng.randrange(4)))
        elif roll < 0.76:
            program.append(("fetch_docs", rng.randrange(4)))
        elif roll < 0.84:
            program.append(("count_docs", rng.randrange(4)))
        elif roll < 0.94:
            program.append(
                ("agg_docs", rng.randrange(4),
                 AGG_FUNCTIONS[rng.randrange(len(AGG_FUNCTIONS))])
            )
        else:
            program.append(("fetch_audits", rng.randrange(4)))
    return program


# -- program execution ---------------------------------------------------------------


def _run_program(kind, program, config):
    """Execute ``program`` under a pushdown ``config``, returning
    ``(observables, leaks)``.  Ops that need an owner are skipped while
    none exists (shrunk programs may drop the opening creates) --
    identically in every configuration, so parity is unaffected."""
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all(MODELS)
    form.policy_pushdown_enabled = config != "off"
    form.policy_pushdown_tier_cap = "store" if config == "store" else None
    observables = []
    leaks = []
    owners = []
    with use_form(form):
        for op in program:
            name, args = op[0], op[1:]
            if not owners and name not in ("create_owner", "create_orgdoc"):
                continue
            if name == "create_owner":
                path = args[1] if len(args) > 1 else "/"
                owners.append(FuzzOwner.objects.create(name=args[0], path=path))
            elif name == "create_doc":
                owner = owners[args[0] % len(owners)]
                FuzzDoc.objects.create(owner=owner, title=args[1], score=args[2])
            elif name == "create_audit":
                owner = owners[args[0] % len(owners)]
                FuzzAudit.objects.create(owner=owner, body=args[1])
            elif name == "update_score":
                observables.append(
                    FuzzDoc.objects.filter(score=args[0]).update(score=args[1])
                )
            elif name == "delete_docs":
                observables.append(FuzzDoc.objects.filter(score=args[0]).delete())
            elif name == "guarded_create":
                owner = owners[args[0] % len(owners)]
                label = Label(hint="fuzzbranch")
                form.runtime.policy_env.declare(label)
                form.runtime.policy_env.restrict(
                    label,
                    lambda viewer, name=owner.name: (
                        getattr(viewer, "name", None) == name
                    ),
                )
                with form.runtime.under_branch(label, True):
                    FuzzDoc.objects.create(owner=owner, title=args[1], score=0)
            elif name == "fetch_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    docs = FuzzDoc.objects.all().fetch()
                for doc in docs:
                    if doc.title != "[secret]" and doc.owner_id != viewer.jid:
                        leaks.append((op, doc.jid, doc.title))
                observables.append(
                    sorted((doc.jid, doc.title, doc.score) for doc in docs)
                )
            elif name == "count_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    observables.append(FuzzDoc.objects.all().count())
            elif name == "agg_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    value = FuzzDoc.objects.all().aggregate("score", args[1])
                observables.append(
                    round(value, 9) if isinstance(value, float) else value
                )
            elif name == "create_orgdoc":
                FuzzOrgDoc.objects.create(path=args[0], body=args[1])
            elif name == "fetch_orgdocs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    docs = FuzzOrgDoc.objects.all().fetch()
                for doc in docs:
                    if doc.body != "[hidden]" and not doc.path.startswith(
                        viewer.path
                    ):
                        leaks.append((op, doc.jid, doc.body))
                observables.append(
                    sorted((doc.jid, doc.path, doc.body) for doc in docs)
                )
            elif name == "fetch_audits":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    audits = FuzzAudit.objects.all().fetch()
                for audit in audits:
                    if audit.body != "[redacted]" and audit.owner_id != viewer.jid:
                        leaks.append((op, audit.jid, audit.body))
                observables.append(sorted((a.jid, a.body) for a in audits))
            else:  # pragma: no cover - generator and runner must agree
                raise ValueError(f"unknown op {name!r}")
    database.close()
    return observables, leaks


def _failure(kind, program):
    """The parity/leak violation this program exposes, or ``None``."""
    runs = {}
    for config in CONFIGS:
        observables, run_leaks = _run_program(kind, program, config)
        if run_leaks:
            return f"cross-viewer leak on the {config!r} path: {run_leaks!r}"
        runs[config] = observables
    oracle = runs["off"]
    for config in CONFIGS[1:]:
        observed = runs[config]
        if observed == oracle:
            continue
        for index, (left, right) in enumerate(zip(observed, oracle)):
            if left != right:
                return (
                    f"observable #{index} diverges under {config!r}: "
                    f"pushdown={left!r} oracle={right!r}"
                )
        return (
            f"observable counts diverge under {config!r}: "
            f"{len(observed)} vs {len(oracle)}"
        )
    return None


def _shrink(kind, program):
    """Greedily drop ops while the failure persists (1-minimal repro)."""
    changed = True
    while changed:
        changed = False
        for index in range(len(program)):
            candidate = program[:index] + program[index + 1:]
            if candidate and _failure(kind, candidate) is not None:
                program = candidate
                changed = True
                break
    return program


def _assert_parity(kind, program):
    """Entry point for paste-able repros emitted on fuzz failures."""
    failure = _failure(kind, program)
    assert failure is None, failure


# -- the harness ---------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_differential_fuzz_policy_parity(kind):
    iterations = int(os.environ.get("FUZZ_ITERATIONS", "20"))
    base_seed = int(os.environ.get("FUZZ_SEED", "20160613"))
    for index in range(iterations):
        seed = base_seed + index
        program = _gen_program(random.Random(seed))
        failure = _failure(kind, program)
        if failure is not None:
            shrunk = _shrink(kind, program)
            failure = _failure(kind, shrunk) or failure
            pytest.fail(
                f"policy parity violated (seed={seed}, backend={kind}):\n"
                f"  {failure}\n"
                "paste-able repro:\n"
                f"def test_repro_seed_{seed}():\n"
                f"    _assert_parity({kind!r}, {shrunk!r})"
            )
