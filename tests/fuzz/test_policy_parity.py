"""Differential fuzzing: policy pushdown vs the Python pruning oracle.

Each iteration draws a random *program* -- creates, set-oriented updates
and deletes, guarded (pc) creates, viewer-context fetches, counts and
aggregates -- from a seeded stdlib ``random.Random``, then runs it twice
on the same backend: once with policy pushdown enabled and once on the
Python Early Pruning path (``form.policy_pushdown_enabled = False``), the
oracle.  The two runs must produce identical observables, and neither may
ever leak a secret title to a non-owner (checked against the fetched
rows' own unpolicied ``owner_id`` column, independent of either path).

On failure the seed is printed, the failing program is greedily shrunk,
and the repro is emitted as a paste-able test case calling
:func:`_assert_parity`.

``FUZZ_ITERATIONS`` (default 20 per backend; CI's nightly job runs 500)
and ``FUZZ_SEED`` tune the sweep from the environment.
"""

import os
import random

import pytest

from repro.cache.config import CacheConfig
from repro.core.labels import Label
from repro.db import Database, SqliteBackend
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class FuzzOwner(JModel):
    name = CharField(max_length=64)


class FuzzDoc(JModel):
    """Equality-on-viewer, own-row-only policy: the narrow pushdown shape."""

    owner = ForeignKey(FuzzOwner)
    title = CharField(max_length=128)
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[secret]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(doc, ctxt):
        return ctxt is not None and doc.owner_id == ctxt.jid


class FuzzAudit(JModel):
    """Eligible but broad: the policy queries another model's rows."""

    owner = ForeignKey(FuzzOwner)
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(audit):
        return "[redacted]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(audit, ctxt):
        owner = FuzzOwner.objects.get(jid=audit.owner_id)
        return owner is not None and ctxt is not None and owner.jid == ctxt.jid


MODELS = [FuzzOwner, FuzzDoc, FuzzAudit]
AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


# -- program generation --------------------------------------------------------------


def _gen_program(rng, length=14):
    """A random op list.  Every program opens with two owners so viewer
    and ownership choices are always well-defined."""
    program = [("create_owner", "ada"), ("create_owner", "bob")]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.18:
            program.append(
                ("create_doc", rng.randrange(4), f"d{rng.randrange(100)}",
                 rng.randrange(10))
            )
        elif roll < 0.26:
            program.append(
                ("create_audit", rng.randrange(4), f"a{rng.randrange(100)}")
            )
        elif roll < 0.32:
            program.append(("create_owner", f"o{rng.randrange(100)}"))
        elif roll < 0.40:
            program.append(
                ("update_score", rng.randrange(10), rng.randrange(10))
            )
        elif roll < 0.46:
            program.append(("delete_docs", rng.randrange(10)))
        elif roll < 0.52:
            program.append(
                ("guarded_create", rng.randrange(4), f"g{rng.randrange(100)}")
            )
        elif roll < 0.68:
            program.append(("fetch_docs", rng.randrange(4)))
        elif roll < 0.78:
            program.append(("count_docs", rng.randrange(4)))
        elif roll < 0.90:
            program.append(
                ("agg_docs", rng.randrange(4),
                 AGG_FUNCTIONS[rng.randrange(len(AGG_FUNCTIONS))])
            )
        else:
            program.append(("fetch_audits", rng.randrange(4)))
    return program


# -- program execution ---------------------------------------------------------------


def _run_program(kind, program, pushdown_enabled):
    """Execute ``program``, returning ``(observables, leaks)``."""
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all(MODELS)
    form.policy_pushdown_enabled = pushdown_enabled
    observables = []
    leaks = []
    owners = []
    with use_form(form):
        for op in program:
            name, args = op[0], op[1:]
            if name == "create_owner":
                owners.append(FuzzOwner.objects.create(name=args[0]))
            elif name == "create_doc":
                owner = owners[args[0] % len(owners)]
                FuzzDoc.objects.create(owner=owner, title=args[1], score=args[2])
            elif name == "create_audit":
                owner = owners[args[0] % len(owners)]
                FuzzAudit.objects.create(owner=owner, body=args[1])
            elif name == "update_score":
                observables.append(
                    FuzzDoc.objects.filter(score=args[0]).update(score=args[1])
                )
            elif name == "delete_docs":
                observables.append(FuzzDoc.objects.filter(score=args[0]).delete())
            elif name == "guarded_create":
                owner = owners[args[0] % len(owners)]
                label = Label(hint="fuzzbranch")
                form.runtime.policy_env.declare(label)
                form.runtime.policy_env.restrict(
                    label,
                    lambda viewer, name=owner.name: (
                        getattr(viewer, "name", None) == name
                    ),
                )
                with form.runtime.under_branch(label, True):
                    FuzzDoc.objects.create(owner=owner, title=args[1], score=0)
            elif name == "fetch_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    docs = FuzzDoc.objects.all().fetch()
                for doc in docs:
                    if doc.title != "[secret]" and doc.owner_id != viewer.jid:
                        leaks.append((op, doc.jid, doc.title))
                observables.append(
                    sorted((doc.jid, doc.title, doc.score) for doc in docs)
                )
            elif name == "count_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    observables.append(FuzzDoc.objects.all().count())
            elif name == "agg_docs":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    value = FuzzDoc.objects.all().aggregate("score", args[1])
                observables.append(
                    round(value, 9) if isinstance(value, float) else value
                )
            elif name == "fetch_audits":
                viewer = owners[args[0] % len(owners)]
                with viewer_context(viewer):
                    audits = FuzzAudit.objects.all().fetch()
                for audit in audits:
                    if audit.body != "[redacted]" and audit.owner_id != viewer.jid:
                        leaks.append((op, audit.jid, audit.body))
                observables.append(sorted((a.jid, a.body) for a in audits))
            else:  # pragma: no cover - generator and runner must agree
                raise ValueError(f"unknown op {name!r}")
    database.close()
    return observables, leaks


def _failure(kind, program):
    """The parity/leak violation this program exposes, or ``None``."""
    pushed, pushed_leaks = _run_program(kind, program, True)
    oracle, oracle_leaks = _run_program(kind, program, False)
    if pushed_leaks:
        return f"cross-viewer leak on the pushdown path: {pushed_leaks!r}"
    if oracle_leaks:
        return f"cross-viewer leak on the oracle path: {oracle_leaks!r}"
    if pushed != oracle:
        for index, (left, right) in enumerate(zip(pushed, oracle)):
            if left != right:
                return (
                    f"observable #{index} diverges: "
                    f"pushdown={left!r} oracle={right!r}"
                )
        return f"observable counts diverge: {len(pushed)} vs {len(oracle)}"
    return None


def _shrink(kind, program):
    """Greedily drop ops while the failure persists (1-minimal repro)."""
    changed = True
    while changed:
        changed = False
        for index in range(len(program)):
            candidate = program[:index] + program[index + 1:]
            if candidate and _failure(kind, candidate) is not None:
                program = candidate
                changed = True
                break
    return program


def _assert_parity(kind, program):
    """Entry point for paste-able repros emitted on fuzz failures."""
    failure = _failure(kind, program)
    assert failure is None, failure


# -- the harness ---------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_differential_fuzz_policy_parity(kind):
    iterations = int(os.environ.get("FUZZ_ITERATIONS", "20"))
    base_seed = int(os.environ.get("FUZZ_SEED", "20160613"))
    for index in range(iterations):
        seed = base_seed + index
        program = _gen_program(random.Random(seed))
        failure = _failure(kind, program)
        if failure is not None:
            shrunk = _shrink(kind, program)
            failure = _failure(kind, shrunk) or failure
            pytest.fail(
                f"policy parity violated (seed={seed}, backend={kind}):\n"
                f"  {failure}\n"
                "paste-able repro:\n"
                f"def test_repro_seed_{seed}():\n"
                f"    _assert_parity({kind!r}, {shrunk!r})"
            )
