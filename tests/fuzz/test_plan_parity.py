"""Differential fuzzing: index-backed plans vs the forced-scan oracle.

Each iteration draws a random *program* -- batch inserts, range updates
and deletes, fetches with range/BETWEEN/prefix-LIKE predicates, ORDER BY
(asc/desc, with NULLs and duplicates), LIMIT/OFFSET, counts and
aggregates -- from a seeded stdlib ``random.Random``, then runs it twice
on the same backend: once with the cost-aware planner free to use the
ordered/hash indexes, and once forced to scan (the oracle;
``MemoryBackend(use_indexes=False)`` / ``SqliteBackend(emit_indexes=False)``).
Access-path choice must never change observable results.

Ordered fetches are compared as (order-key sequence, sorted row multiset)
so legitimate tie-order freedom never reads as a divergence; fetches with
LIMIT/OFFSET always carry an ``id`` tiebreak term, making the bounded
result fully deterministic on both backends.

On failure the seed is printed, the failing program is greedily shrunk,
and the repro is emitted as a paste-able test case calling
:func:`_assert_parity`.

``FUZZ_ITERATIONS`` (default 20 per backend; CI runs 200) and
``FUZZ_SEED`` tune the sweep from the environment.
"""

import os
import random

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    IndexSpec,
    MemoryBackend,
    SqliteBackend,
    TableSchema,
    between,
    gt,
    gte,
    like,
    lt,
    lte,
)
from repro.db.expr import AndExpr, InList, IsNull, col, eq

SCHEMA = TableSchema(
    "FuzzRow",
    (
        Column("id", ColumnType.INTEGER, primary_key=True),
        Column("score", ColumnType.INTEGER, ordered=True),
        Column("rank", ColumnType.INTEGER, ordered=True),
        Column("name", ColumnType.TEXT, ordered=True),
        Column("tag", ColumnType.TEXT, indexed=True),
    ),
    indexes=(IndexSpec(("score", "id")),),
)

COLUMNS = ("id", "score", "rank", "name", "tag")
SCORES = list(range(10)) + [None]
RANKS = [0, 1, 2, None]  # heavy duplicates: ORDER BY ties are the point
NAMES = ["alpha", "Alpha", "alps", "beta", "Beta", "bet", "gamma", "ga_ma", None]
TAGS = ["x", "y", "z", None]
PATTERNS = ["al%", "Al%", "BE%", "b_t%", "ga%", "%ma", "alp%"]
RANGE_COLUMNS = ("score", "rank", "name")
AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


# -- program generation --------------------------------------------------------------


def _gen_row(rng):
    return (
        SCORES[rng.randrange(len(SCORES))],
        RANKS[rng.randrange(len(RANKS))],
        NAMES[rng.randrange(len(NAMES))],
        TAGS[rng.randrange(len(TAGS))],
    )


def _gen_bound(rng, column):
    if column == "name":
        pool = [name for name in NAMES if name is not None] + [None]
        return pool[rng.randrange(len(pool))]
    return SCORES[rng.randrange(len(SCORES))]


def _gen_where(rng, depth=0):
    """A where-clause spec (plain data, so repros stay paste-able)."""
    roll = rng.random()
    column = RANGE_COLUMNS[rng.randrange(len(RANGE_COLUMNS))]
    if roll < 0.25:
        return ("between", column, _gen_bound(rng, column), _gen_bound(rng, column))
    if roll < 0.45:
        op = ("gt", "gte", "lt", "lte")[rng.randrange(4)]
        return ("cmp", op, column, _gen_bound(rng, column))
    if roll < 0.58:
        return (
            "like",
            "name",
            PATTERNS[rng.randrange(len(PATTERNS))],
            rng.random() < 0.5,
        )
    if roll < 0.68:
        return ("eq", "tag", TAGS[rng.randrange(len(TAGS))])
    if roll < 0.76:
        return ("isnull", column)
    if roll < 0.84:
        values = tuple(_gen_bound(rng, column) for _ in range(rng.randrange(1, 4)))
        return ("in", column, values)
    if depth < 1:
        return ("and", _gen_where(rng, depth + 1), _gen_where(rng, depth + 1))
    return ("cmp", "gte", column, _gen_bound(rng, column))


def _gen_order(rng, with_limit):
    terms = []
    if rng.random() < 0.8:
        column = RANGE_COLUMNS[rng.randrange(len(RANGE_COLUMNS))]
        terms.append((column, rng.random() < 0.6))
        if rng.random() < 0.3:
            other = RANGE_COLUMNS[rng.randrange(len(RANGE_COLUMNS))]
            if other != column:
                terms.append((other, rng.random() < 0.6))
    if with_limit:
        # A total order: bounded results must be deterministic on both
        # backends before index-on/off runs can be compared row-for-row.
        terms.append(("id", True))
    return tuple(terms)


def _gen_program(rng, length=14):
    """A random op list.  Every program opens with a seed batch so range
    predicates and ORDER BY always have rows (and duplicates) to chew on."""
    program = [("insert", tuple(_gen_row(rng) for _ in range(rng.randrange(6, 14))))]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.18:
            program.append(
                ("insert", tuple(_gen_row(rng) for _ in range(rng.randrange(1, 5))))
            )
        elif roll < 0.28:
            program.append(
                ("update", _gen_where(rng), SCORES[rng.randrange(len(SCORES))])
            )
        elif roll < 0.36:
            program.append(("delete", _gen_where(rng)))
        elif roll < 0.70:
            where = _gen_where(rng) if rng.random() < 0.8 else None
            with_limit = rng.random() < 0.4
            order = _gen_order(rng, with_limit)
            limit = rng.randrange(1, 8) if with_limit else None
            offset = rng.randrange(0, 4) if with_limit and rng.random() < 0.5 else 0
            program.append(("fetch", where, order, limit, offset))
        elif roll < 0.82:
            program.append(("count", _gen_where(rng)))
        else:
            program.append(
                ("agg", _gen_where(rng),
                 AGG_FUNCTIONS[rng.randrange(len(AGG_FUNCTIONS))], "score")
            )
    return program


# -- program execution ---------------------------------------------------------------


def _build_where(spec):
    if spec is None:
        return None
    kind = spec[0]
    if kind == "between":
        return between(spec[1], spec[2], spec[3])
    if kind == "cmp":
        builder = {"gt": gt, "gte": gte, "lt": lt, "lte": lte}[spec[1]]
        return builder(spec[2], spec[3])
    if kind == "like":
        return like(spec[1], spec[2], case_sensitive=spec[3])
    if kind == "eq":
        return eq(spec[1], spec[2])
    if kind == "isnull":
        return IsNull(col(spec[1]))
    if kind == "in":
        return InList(col(spec[1]), tuple(spec[2]))
    if kind == "and":
        return AndExpr(_build_where(spec[1]), _build_where(spec[2]))
    raise ValueError(f"unknown where spec {spec!r}")


def _orderable(value):
    return (value is None, type(value).__name__, 0 if value is None else value)


def _canonical_fetch(rows, order):
    """Ordered fetches compare as (order-key sequence, sorted multiset):
    the key sequence pins the ordering contract while the multiset absorbs
    the backends' freedom in tie order."""
    frozen = [tuple(row[column] for column in COLUMNS) for row in rows]
    multiset = sorted(frozen, key=lambda row: tuple(_orderable(v) for v in row))
    if order:
        keys = tuple(tuple(row[column] for column, _ in order) for row in rows)
        return ("ordered", keys, multiset)
    return ("bag", multiset)


def _run_program(kind, program, indexed):
    """Execute ``program``, returning its observables."""
    if kind == "memory":
        backend = MemoryBackend(use_indexes=indexed)
    else:
        backend = SqliteBackend(emit_indexes=indexed)
    observables = []
    with Database(backend) as database:
        database.create_table(SCHEMA)
        for op in program:
            name, args = op[0], op[1:]
            if name == "insert":
                rows = [
                    {"score": score, "rank": rank, "name": text, "tag": tag}
                    for score, rank, text, tag in args[0]
                ]
                observables.append(tuple(database.insert_many("FuzzRow", rows)))
            elif name == "update":
                observables.append(
                    database.update(
                        "FuzzRow", _build_where(args[0]), score=args[1]
                    )
                )
            elif name == "delete":
                observables.append(
                    database.delete("FuzzRow", _build_where(args[0]))
                )
            elif name == "fetch":
                where, order, limit, offset = args
                query = database.query("FuzzRow")
                if where is not None:
                    query = query.filter(_build_where(where))
                for column, ascending in order:
                    query = query.ordered_by(column, ascending=ascending)
                if limit is not None:
                    query = query.limited(limit, offset=offset)
                observables.append(
                    _canonical_fetch(database.execute(query), order)
                )
            elif name == "count":
                observables.append(
                    database.count("FuzzRow", _build_where(args[0]))
                )
            elif name == "agg":
                query = database.query("FuzzRow").with_aggregate(args[1], args[2])
                if args[0] is not None:
                    query = query.filter(_build_where(args[0]))
                value = database.aggregate(query)
                observables.append(
                    round(value, 9) if isinstance(value, float) else value
                )
            else:  # pragma: no cover - generator and runner must agree
                raise ValueError(f"unknown op {name!r}")
    return observables


def _failure(kind, program):
    """The plan-parity violation this program exposes, or ``None``."""
    indexed = _run_program(kind, program, True)
    oracle = _run_program(kind, program, False)
    if indexed != oracle:
        for index, (left, right) in enumerate(zip(indexed, oracle)):
            if left != right:
                return (
                    f"observable #{index} ({program[index][0]}) diverges: "
                    f"indexed={left!r} forced-scan={right!r}"
                )
        return f"observable counts diverge: {len(indexed)} vs {len(oracle)}"
    return None


def _shrink(kind, program):
    """Greedily drop ops while the failure persists (1-minimal repro)."""
    changed = True
    while changed:
        changed = False
        for index in range(len(program)):
            candidate = program[:index] + program[index + 1:]
            if candidate and _failure(kind, candidate) is not None:
                program = candidate
                changed = True
                break
    return program


def _assert_parity(kind, program):
    """Entry point for paste-able repros emitted on fuzz failures."""
    failure = _failure(kind, program)
    assert failure is None, failure


# -- the harness ---------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_differential_fuzz_plan_parity(kind):
    iterations = int(os.environ.get("FUZZ_ITERATIONS", "20"))
    base_seed = int(os.environ.get("FUZZ_SEED", "20160613"))
    for index in range(iterations):
        seed = base_seed + index
        program = _gen_program(random.Random(seed))
        failure = _failure(kind, program)
        if failure is not None:
            shrunk = _shrink(kind, program)
            failure = _failure(kind, shrunk) or failure
            pytest.fail(
                f"plan parity violated (seed={seed}, backend={kind}):\n"
                f"  {failure}\n"
                "paste-able repro:\n"
                f"def test_repro_seed_{seed}():\n"
                f"    _assert_parity({kind!r}, {shrunk!r})"
            )
