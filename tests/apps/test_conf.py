"""Integration tests for the conference management system (both stacks).

The central check is *equivalence*: for the same workload and viewer, the
Jacqueline implementation (policies in models) and the Django-style baseline
(hand-coded checks in views) must render the same pages.
"""

import pytest

from repro.apps.conf import (
    ConferencePhase,
    BaselineConfPhase,
    Paper,
    build_baseline_conf_app,
    build_conf_app,
    seed_baseline_conference,
    seed_conference,
    setup_baseline_conf,
    setup_conf,
)
from repro.form import use_form, viewer_context
from repro.web import TestClient


@pytest.fixture
def stacks():
    form = setup_conf()
    created = seed_conference(form, papers=6, users=6, pc_members=3)
    app = build_conf_app(form)

    db = setup_baseline_conf()
    baseline_created = seed_baseline_conference(db, papers=6, users=6, pc_members=3)
    baseline_app = build_baseline_conf_app(db)
    yield {
        "form": form,
        "created": created,
        "app": app,
        "db": db,
        "baseline_created": baseline_created,
        "baseline_app": baseline_app,
    }
    ConferencePhase.reset()
    BaselineConfPhase.reset()


def _client(stack, kind, user):
    if kind == "jacqueline":
        client = TestClient(stack["app"])
        client.force_login(user.jid, user.name)
    else:
        client = TestClient(stack["baseline_app"])
        client.force_login(user.pk, user.name)
    return client


def test_author_sees_only_their_own_authorship(stacks):
    author = stacks["created"]["users"][0]
    client = _client(stacks, "jacqueline", author)
    body = client.get("/papers").body
    assert body.count("author0") == 1
    assert "[anonymous]" in body


def test_pc_member_sees_unconflicted_authors(stacks):
    pc = stacks["created"]["pc"][0]
    client = _client(stacks, "jacqueline", pc)
    body = client.get("/papers").body
    assert "[anonymous]" in body  # the conflicted paper stays anonymous
    assert body.count("author") > 2


def test_chair_sees_everything(stacks):
    chair = stacks["created"]["chair"][0]
    client = _client(stacks, "jacqueline", chair)
    body = client.get("/papers").body
    assert "[anonymous]" not in body


def test_final_phase_reveals_authors_to_everyone(stacks):
    author = stacks["created"]["users"][1]
    ConferencePhase.set(ConferencePhase.FINAL)
    client = _client(stacks, "jacqueline", author)
    assert "[anonymous]" not in client.get("/papers").body


def test_email_policy_on_user_pages(stacks):
    author = stacks["created"]["users"][0]
    chair = stacks["created"]["chair"][0]
    author_body = _client(stacks, "jacqueline", author).get("/users").body
    chair_body = _client(stacks, "jacqueline", chair).get("/users").body
    assert author_body.count("[hidden email]") >= len(stacks["created"]["users"]) - 1
    assert "[hidden email]" not in chair_body


def test_reviews_hidden_from_authors_until_final(stacks):
    author = stacks["created"]["users"][0]
    paper = stacks["created"]["papers"][0]
    client = _client(stacks, "jacqueline", author)
    body = client.get(f"/paper/{paper.jid}").body
    assert "[review not yet available]" in body
    ConferencePhase.set(ConferencePhase.FINAL)
    body = client.get(f"/paper/{paper.jid}").body
    assert "Review 0 of paper 0" in body
    assert "[anonymous reviewer]" in body  # reviewer identity stays hidden


def test_paper_submission_via_post(stacks):
    author = stacks["created"]["users"][2]
    client = _client(stacks, "jacqueline", author)
    response = client.post("/submit", title="A brand new result")
    assert response.status == 302
    assert "A brand new result" in client.get("/papers").body
    with use_form(stacks["form"]), viewer_context(author):
        assert Paper.objects.get(title="A brand new result") is not None


def test_phase_change_requires_chair(stacks):
    author = stacks["created"]["users"][0]
    chair = stacks["created"]["chair"][0]
    assert _client(stacks, "jacqueline", author).post("/phase", phase="final").status == 403
    assert _client(stacks, "jacqueline", chair).post("/phase", phase="final").status == 302
    assert ConferencePhase.current == ConferencePhase.FINAL


@pytest.mark.parametrize("role", ["author", "pc", "chair"])
def test_jacqueline_and_baseline_render_identical_pages(stacks, role):
    """The two implementations enforce the same policies on every page."""
    picks = {
        "author": (stacks["created"]["users"][0], stacks["baseline_created"]["users"][0]),
        "pc": (stacks["created"]["pc"][1], stacks["baseline_created"]["pc"][1]),
        "chair": (stacks["created"]["chair"][0], stacks["baseline_created"]["chair"][0]),
    }
    jacqueline_user, baseline_user = picks[role]
    jacqueline_client = _client(stacks, "jacqueline", jacqueline_user)
    baseline_client = _client(stacks, "baseline", baseline_user)

    assert jacqueline_client.get("/papers").body == baseline_client.get("/papers").body
    assert jacqueline_client.get("/users").body == baseline_client.get("/users").body

    paper = stacks["created"]["papers"][0]
    baseline_paper = stacks["baseline_created"]["papers"][0]
    assert (
        jacqueline_client.get(f"/paper/{paper.jid}").body
        == baseline_client.get(f"/paper/{baseline_paper.pk}").body
    )
    user = stacks["created"]["users"][0]
    baseline_user_row = stacks["baseline_created"]["users"][0]
    assert (
        jacqueline_client.get(f"/user/{user.jid}").body
        == baseline_client.get(f"/user/{baseline_user_row.pk}").body
    )


def test_unpruned_requests_still_enforce_policies(stacks):
    """Disabling Early Pruning must not change what a viewer sees."""
    author = stacks["created"]["users"][0]
    pruned = _client(stacks, "jacqueline", author).get("/papers").body
    no_pruning_app = build_conf_app(stacks["form"], early_pruning=False)
    client = TestClient(no_pruning_app)
    client.force_login(author.jid, author.name)
    assert client.get("/papers").body == pruned
