"""Integration tests for the Section 2 calendar example."""

import pytest

from repro.apps.calendar import Event, EventGuest, UserProfile, build_calendar_app, setup_calendar
from repro.form import use_form, viewer_context
from repro.web import TestClient


@pytest.fixture
def calendar():
    form = setup_calendar()
    with use_form(form):
        alice = UserProfile.objects.create(name="Alice", email="alice@x.org")
        bob = UserProfile.objects.create(name="Bob", email="bob@x.org")
        carol = UserProfile.objects.create(name="Carol", email="carol@x.org")
        party = Event.objects.create(
            name="Carol's surprise party",
            location="Schloss Dagstuhl",
            description="Shh, it's a secret",
        )
        EventGuest.objects.create(event=party, guest=alice)
        EventGuest.objects.create(event=party, guest=bob)
        yield {"form": form, "alice": alice, "bob": bob, "carol": carol, "party": party}


def test_guests_see_event_details(calendar):
    form = calendar["form"]
    with use_form(form), viewer_context(calendar["alice"]):
        events = list(Event.objects.all())
        assert events[0].name == "Carol's surprise party"
        assert events[0].location == "Schloss Dagstuhl"


def test_non_guests_see_public_facets(calendar):
    form = calendar["form"]
    with use_form(form), viewer_context(calendar["carol"]):
        events = list(Event.objects.all())
        assert events[0].name == "Private event"
        assert events[0].location == "Undisclosed location"


def test_query_on_secret_location_hides_matches_from_outsiders(calendar):
    form = calendar["form"]
    with use_form(form):
        with viewer_context(calendar["bob"]):
            assert len(list(Event.objects.filter(location="Schloss Dagstuhl"))) == 1
        with viewer_context(calendar["carol"]):
            assert list(Event.objects.filter(location="Schloss Dagstuhl")) == []


def test_guest_list_policy_depends_on_itself(calendar):
    """The mutual-dependency policy of Section 2.3 resolves per viewer."""
    form = calendar["form"]
    with use_form(form):
        with viewer_context(calendar["alice"]):
            guests = list(EventGuest.objects.filter(event=calendar["party"]))
            names = {g.guest.name for g in guests if g.guest is not None}
            assert names == {"Alice", "Bob"}
        with viewer_context(calendar["carol"]):
            guests = list(EventGuest.objects.filter(event=calendar["party"]))
            assert all(g.guest is None for g in guests)


def test_calendar_web_app_end_to_end(calendar):
    app = build_calendar_app(calendar["form"])
    guest_client = TestClient(app)
    guest_client.post("/login", username="Alice")
    page = guest_client.get("/events")
    assert "Carol&#x27;s surprise party" in page.body or "Carol's surprise party" in page.body
    assert "Schloss Dagstuhl" in page.body

    outsider_client = TestClient(app)
    outsider_client.post("/login", username="Carol")
    page = outsider_client.get("/events")
    assert "Private event" in page.body
    assert "Dagstuhl" not in page.body


def test_event_creation_through_the_app(calendar):
    app = build_calendar_app(calendar["form"])
    client = TestClient(app)
    client.post("/login", username="Alice")
    response = client.post(
        "/event",
        name="Planning meeting",
        location="Library",
        description="",
        guests="Alice",
    )
    assert response.status == 302
    page = client.get("/events")
    assert "Planning meeting" in page.body
    other = TestClient(app)
    other.post("/login", username="Carol")
    assert "Library" not in other.get("/events").body
