"""Integration tests for the health record manager and the course manager."""

import pytest

from repro.apps.health import (
    HealthRecord,
    build_health_app,
    seed_health,
    setup_health,
)
from repro.apps.course import (
    Course,
    Submission,
    build_course_app,
    seed_courses,
    setup_courses,
)
from repro.form import use_form, viewer_context
from repro.web import TestClient


# -- health record manager -------------------------------------------------------------


@pytest.fixture
def clinic():
    form = setup_health()
    created = seed_health(form, patients=6, doctors=3, insurers=2)
    app = build_health_app(form)
    return {"form": form, "created": created, "app": app}


def _login(app, user):
    client = TestClient(app)
    client.force_login(user.jid, user.name)
    return client


def test_patient_sees_only_their_own_diagnoses(clinic):
    patient = clinic["created"]["patients"][0]
    body = _login(clinic["app"], patient).get("/records").body
    assert "Diagnosis 0 for patient 0" in body
    assert body.count("[protected health information]") == len(clinic["created"]["patients"]) - 1


def test_doctor_sees_their_patients_records(clinic):
    doctor = clinic["created"]["doctors"][0]
    body = _login(clinic["app"], doctor).get("/records").body
    # doctor0 treats patients 0 and 3 (6 patients across 3 doctors).
    assert "Diagnosis 0 for patient 0" in body
    assert "Diagnosis 0 for patient 3" in body
    assert "[protected health information]" in body


def test_insurer_needs_a_waiver(clinic):
    insurer = clinic["created"]["insurers"][0]
    body = _login(clinic["app"], insurer).get("/records").body
    # Waivers exist for even-numbered patients with insurer index % 2 == 0.
    assert "Diagnosis 0 for patient 0" in body
    assert "Diagnosis 0 for patient 1" not in body


def test_email_visibility_in_directory(clinic):
    patient = clinic["created"]["patients"][0]
    doctor = clinic["created"]["doctors"][0]
    patient_body = _login(clinic["app"], patient).get("/people").body
    assert patient_body.count("[hidden]") >= 1
    assert f"patient0@mail.org" in patient_body
    doctor_body = _login(clinic["app"], doctor).get("/people").body
    assert "patient0@mail.org" in doctor_body  # doctor0 treats patient0
    assert "patient1@mail.org" not in doctor_body


def test_doctor_can_add_record_via_post(clinic):
    doctor = clinic["created"]["doctors"][1]
    patient = clinic["created"]["patients"][1]
    client = _login(clinic["app"], doctor)
    response = client.post(
        "/record", patient=str(patient.jid), diagnosis="Sprained ankle", notes="rest"
    )
    assert response.status == 302
    with use_form(clinic["form"]), viewer_context(patient):
        diagnoses = {record.diagnosis for record in HealthRecord.objects.filter(patient=patient)}
    assert "Sprained ankle" in diagnoses
    # Patients cannot add records.
    assert _login(clinic["app"], patient).post("/record", patient="1").status == 403


# -- course manager -----------------------------------------------------------------------


@pytest.fixture
def campus():
    form = setup_courses()
    created = seed_courses(form, courses=5, students_per_course=2)
    app = build_course_app(form)
    return {"form": form, "created": created, "app": app}


def test_student_sees_instructor_of_enrolled_courses_only(campus):
    student = campus["created"]["students"][0]  # enrolled in course 0
    body = _login(campus["app"], student).get("/courses").body
    assert "instructor0" in body
    assert "instructor1" not in body
    assert body.count("[not listed]") == len(campus["created"]["courses"]) - 1


def test_instructor_sees_their_own_course(campus):
    instructor = campus["created"]["instructors"][2]
    body = _login(campus["app"], instructor).get("/courses").body
    assert "instructor2" in body
    assert "instructor0" not in body


def test_submission_contents_visible_to_author_and_instructor(campus):
    submission = campus["created"]["submissions"][0]
    assignment = campus["created"]["assignments"][0]
    author = campus["created"]["students"][1]  # last student of course 0 submitted
    instructor = campus["created"]["instructors"][0]
    outsider = campus["created"]["students"][2]

    path = f"/assignment/{assignment.jid}/submissions"
    assert "Answer by" in _login(campus["app"], author).get(path).body
    assert "Answer by" in _login(campus["app"], instructor).get(path).body
    assert "[not visible]" in _login(campus["app"], outsider).get(path).body


def test_grade_hidden_until_graded(campus):
    assignment = campus["created"]["assignments"][0]
    submission = campus["created"]["submissions"][0]
    author = campus["created"]["students"][1]
    instructor = campus["created"]["instructors"][0]
    path = f"/assignment/{assignment.jid}/submissions"

    assert "grade 0" in _login(campus["app"], author).get(path).body
    assert "grade 90" in _login(campus["app"], instructor).get(path).body

    client = _login(campus["app"], instructor)
    response = client.post("/grade", submission=str(submission.jid), grade="85")
    assert response.status == 302
    assert "grade 85" in _login(campus["app"], author).get(path).body


def test_early_pruning_off_matches_pruned_output(campus):
    """Table 5's correctness side: pruning only changes cost, not content."""
    student = campus["created"]["students"][0]
    pruned_body = _login(campus["app"], student).get("/courses").body
    unpruned_app = build_course_app(campus["form"], early_pruning=False)
    unpruned_body = _login(unpruned_app, student).get("/courses").body
    assert pruned_body == unpruned_body


def test_course_detail_page(campus):
    student = campus["created"]["students"][0]
    course = campus["created"]["courses"][0]
    body = _login(campus["app"], student).get(f"/course/{course.jid}").body
    assert "Course 0" in body
    assert "Assignment 0 of course 0" in body
