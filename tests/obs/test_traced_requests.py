"""End-to-end tracing through the conference application.

The acceptance path of the observability subsystem: a traced ``view_all``
request on the conf app yields a span tree with per-statement SQL timings
and non-zero counters for policy evaluations, facet rows and worlds merged,
and the ``/metrics`` + ``/debug/trace/<id>`` endpoints serve what the trace
recorded.
"""

import json

import pytest

from repro import obs
from repro.apps.conf import build_conf_app, seed_conference, setup_conf
from repro.db.engine import Database
from repro.db.sqlite_backend import SqliteBackend
from repro.web import TestClient
from repro.web.obs import add_observability_routes


@pytest.fixture
def conf():
    database = Database(SqliteBackend())
    form = setup_conf(database)
    created = seed_conference(form, papers=6, users=6, pc_members=3)
    app = add_observability_routes(build_conf_app(form))
    yield form, created, app
    from repro.apps.conf import ConferencePhase

    ConferencePhase.reset()
    database.close()


def _spans(root):
    yield root
    for child in root.children:
        yield from _spans(child)


def test_traced_view_all_yields_spans_sql_timings_and_counters(conf):
    _form, created, app = conf
    client = TestClient(app)
    author = created["users"][0]
    client.force_login(author.jid, author.name)
    with obs.tracing():
        response = client.get("/papers")
        assert response.ok
        trace_id = response.headers["X-Trace-Id"]
        trace = obs.get_trace(trace_id)
    assert trace is not None and trace.name == "GET /papers"
    names = [span.name for span in _spans(trace.root)]
    assert "web.view" in names and "web.render" in names
    assert "form.fetch" in names
    sql_leaves = [span for span in _spans(trace.root) if span.name == "db.sql"]
    assert sql_leaves, "expected per-statement db.sql leaf spans"
    for leaf in sql_leaves:
        assert leaf.attributes["sql"]
        assert leaf.duration is not None and leaf.duration >= 0
    # The faceted-execution cost counters of the request (pruned path).
    assert trace.counters["policy.evaluations"] > 0
    assert trace.counters["facet.rows.unmarshalled"] > 0
    assert trace.counters["labels.resolved"] > 0
    assert trace.counters["db.statements"] == len(sql_leaves)
    assert trace.counters["web.requests"] == 1


def test_anonymous_view_all_counts_worlds_merged(conf):
    _form, _created, app = conf
    client = TestClient(app)
    with obs.tracing():
        response = client.get("/papers")
        assert response.ok
        trace = obs.get_trace(response.headers["X-Trace-Id"])
    # No viewer: the fetch stays faceted and concretisation at render time
    # merges per-world values and evaluates policies.
    assert trace.counters["worlds.merged"] > 0
    assert trace.counters["policy.evaluations"] > 0


def test_untraced_requests_carry_no_trace_header(conf):
    _form, created, app = conf
    client = TestClient(app)
    response = client.get("/papers")
    assert response.ok
    assert "X-Trace-Id" not in response.headers


def test_metrics_endpoint_serves_counters_and_cache_stats(conf):
    _form, _created, app = conf
    client = TestClient(app)
    with obs.tracing():
        client.get("/papers")
    payload = json.loads(client.get("/metrics").body)
    assert payload["enabled"] is False  # tracing() restored the disabled state
    assert payload["counters"]["web.requests"] >= 1
    assert payload["counters"]["db.statements"] >= 1
    # The conf FORM registered its caches on construction.
    assert payload["caches"]["sources"] >= 1
    assert set(payload["caches"]["layers"]) == {"queries", "labels", "fragments"}
    assert payload["traces"], "recent-trace index should list the traced request"


def test_debug_trace_endpoint_serves_the_span_tree(conf):
    _form, _created, app = conf
    client = TestClient(app)
    with obs.tracing():
        trace_id = client.get("/papers").headers["X-Trace-Id"]
    response = client.get(f"/debug/trace/{trace_id}")
    assert response.ok
    assert response.headers["Content-Type"].startswith("application/json")
    payload = json.loads(response.body)
    assert payload["trace_id"] == trace_id
    assert payload["counters"]["facet.rows.unmarshalled"] > 0
    spans = payload["spans"]
    assert spans["name"] == "GET /papers"
    assert any(child["name"] == "web.view" for child in spans["children"])


def test_debug_trace_unknown_id_is_404(conf):
    _form, _created, app = conf
    client = TestClient(app)
    response = client.get("/debug/trace/deadbeef")
    assert response.status == 404
    assert json.loads(response.body) == {"error": "unknown trace id"}
