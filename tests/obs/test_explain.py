"""``Query.explain()`` / ``QuerySet.explain()``: the reported SQL is the
executed SQL, verified against the statement observer on every path."""

import pytest

from repro.db import Database, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class Author(JModel):
    name = CharField(max_length=64)


class Paper(JModel):
    author = ForeignKey(Author)
    title = CharField(max_length=128)
    status = CharField(max_length=32, default="submitted")
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(paper):
        return "[anonymous]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(paper, ctxt):
        return ctxt is not None and paper.author_id == ctxt.jid


@pytest.fixture
def form():
    backend = SqliteBackend()
    database = Database(backend)
    form = FORM(database)
    form.register_all([Author, Paper])
    with use_form(form):
        author = Author.objects.create(name="ada")
        for i in range(3):
            Paper.objects.create(author=author, title=f"t{i}", score=i)
        yield form, backend, author
    database.close()


def _observed_sql(backend, run):
    with StatementLog(backend) as log:
        run()
    return [event.sql for event in log.events]


def test_fetch_explain_matches_executed_sql(form):
    form_, backend, author = form
    qs = Paper.objects.filter(author=author)
    report = qs.explain()
    assert report["operation"] == "fetch"
    assert report["plan"] == "scan"
    assert report["mode"] == "faceted"
    assert report["tables"] == ["Paper"]
    assert report["sql"] in _observed_sql(backend, qs.fetch)


def test_bounded_fetch_explain_reports_key_subselect(form):
    form_, backend, author = form
    qs = Paper.objects.filter(author=author).order_by("score").limited(2)
    report = qs.explain()
    assert report["plan"] == "key-subselect"
    assert 'jid IN (SELECT "jid" FROM "Paper"' in report["sql"]
    assert "LIMIT 2" in report["sql"]
    assert report["sql"] in _observed_sql(backend, qs.fetch)


def test_explain_mode_reflects_the_viewer_context(form):
    form_, _backend, author = form
    with viewer_context(author):
        # Paper's policy is equality-on-viewer, so the pruning predicate
        # compiles into the statement itself.
        assert Paper.objects.all().explain()["mode"] == "policy-pushdown"
        form_.policy_pushdown_enabled = False
        try:
            assert Paper.objects.all().explain()["mode"] == "pruned"
        finally:
            form_.policy_pushdown_enabled = True
    assert Paper.objects.all().explain()["mode"] == "faceted"


def test_count_explain_matches_the_grouped_statement(form):
    form_, backend, _author = form
    qs = Paper.objects.all()
    report = qs.explain("count")
    assert report["plan"] == "grouped-aggregate"
    assert "GROUP BY" in report["sql"]
    assert report["sql"] in _observed_sql(backend, qs.count)


def test_aggregate_explain_matches_the_grouped_statement(form):
    form_, backend, _author = form
    qs = Paper.objects.all()
    report = qs.explain("aggregate", field="score", function="AVG")
    assert report["plan"] == "grouped-aggregate"
    # AVG ships (SUM, COUNT) ingredients; both appear in the statement.
    assert 'SUM("score")' in report["sql"] and 'COUNT("score")' in report["sql"]
    assert report["sql"] in _observed_sql(backend, lambda: qs.avg("score"))


def test_bounded_count_explain_reports_the_fetch_fallback(form):
    form_, _backend, _author = form
    report = Paper.objects.all().limited(2).explain("count")
    assert report["plan"] == "fetch-fallback"
    assert report["reason"] == "bounded query set"


def test_update_fast_path_explain_matches_executed_sql(form):
    form_, backend, author = form
    qs = Paper.objects.filter(author=author)
    report = qs.explain("update", status="accepted")
    assert (report["plan"], report["path"]) == ("update-pushdown", "fast")
    assert report["sql"].startswith('UPDATE "Paper" SET "status" = ?')
    assert report["sql"] in _observed_sql(
        backend, lambda: qs.update(status="accepted")
    )


def test_update_fallback_explain_matches_the_jid_projection(form):
    form_, backend, author = form
    qs = Paper.objects.filter(author=author)
    # "title" is policied: the write takes the batched facet rewrite, whose
    # first statement is the projected jid query the explain reports.
    report = qs.explain("update", title="x")
    assert (report["plan"], report["path"]) == ("batched-facet-rewrite", "fallback")
    assert 'SELECT DISTINCT "jid"' in report["sql"]
    assert report["sql"] in _observed_sql(backend, lambda: qs.update(title="x"))


def test_delete_fast_path_explain_matches_executed_sql(form):
    form_, backend, author = form
    qs = Paper.objects.filter(author=author)
    report = qs.explain("delete")
    assert (report["plan"], report["path"]) == ("delete-pushdown", "fast")
    assert report["sql"].startswith('DELETE FROM "Paper"')
    assert report["sql"] in _observed_sql(backend, qs.delete)


def test_unknown_operation_raises(form):
    with pytest.raises(ValueError, match="unknown explain operation"):
        Paper.objects.all().explain("vacuum")


def test_explain_executes_nothing(form):
    form_, backend, author = form
    with StatementLog(backend) as log:
        Paper.objects.filter(author=author).explain()
        Paper.objects.all().explain("count")
        Paper.objects.all().explain("update", status="x")
        Paper.objects.all().explain("delete")
    assert log.events == []
