"""The backend statement-observer hook: events, parity, trace integration."""

import pytest

from repro import obs
from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.db.expr import eq
from repro.db.observe import insert_summary, replace_summary
from repro.db.query import Query
from repro.db.schema import ColumnType


def _database(kind):
    backend = MemoryBackend() if kind == "memory" else SqliteBackend()
    database = Database(backend)
    database.define_table(
        "Paper",
        jid=ColumnType.INTEGER,
        jvars=ColumnType.TEXT,
        title=ColumnType.TEXT,
        score=ColumnType.INTEGER,
    )
    return database, backend


def _seed(database):
    database.insert_many(
        "Paper",
        [
            {"jid": 1, "jvars": "", "title": "a", "score": 1},
            {"jid": 2, "jvars": "", "title": "b", "score": 2},
        ],
    )


@pytest.fixture(params=["memory", "sqlite"])
def observed(request):
    database, backend = _database(request.param)
    log = StatementLog(backend)
    yield database, backend, log
    log.detach()
    if request.param == "sqlite":
        database.close()


def test_events_carry_kind_sql_rows_and_timing(observed):
    database, _backend, log = observed
    _seed(database)
    rows = database.execute(Query(table="Paper").filter(eq("title", "a")))
    assert len(rows) == 1
    kinds = [event.kind for event in log.events]
    assert kinds == ["INSERT", "SELECT"]
    insert, select = log.events
    assert insert.sql == insert_summary("Paper", 2)
    assert insert.rows == 2
    assert select.sql == 'SELECT * FROM "Paper" WHERE title = ?'
    assert select.params == ("a",)
    assert select.rows == 1
    assert all(event.duration >= 0 for event in log.events)


def test_update_delete_and_replace_report_affected_rows(observed):
    database, _backend, log = observed
    _seed(database)
    log.clear()
    changed = database.update("Paper", eq("title", "a"), score=9)
    deleted = database.delete("Paper", eq("title", "b"))
    database.replace_rows(
        "Paper", eq("jid", 1),
        [{"jid": 1, "jvars": "", "title": "a2", "score": 9}],
    )
    assert (changed, deleted) == (1, 1)
    update, delete, replace = log.events
    assert update.kind == "UPDATE" and update.rows == 1
    assert update.sql.startswith('UPDATE "Paper" SET "score" = ?')
    assert delete.kind == "DELETE" and delete.rows == 1
    assert replace.kind == "REPLACE"
    assert replace.sql == replace_summary("Paper", 1, 1)


def test_both_backends_emit_identical_event_streams():
    streams = {}
    for kind in ("memory", "sqlite"):
        database, backend = _database(kind)
        with StatementLog(backend) as log:
            _seed(database)
            database.execute(Query(table="Paper"))
            database.update("Paper", eq("title", "a"), score=0)
            database.aggregate(Query(table="Paper").with_aggregate("COUNT"))
            database.delete("Paper", eq("title", "b"))
            streams[kind] = [(e.kind, e.sql, e.rows) for e in log.events]
        if kind == "sqlite":
            database.close()
    assert streams["memory"] == streams["sqlite"]


def test_observers_detach_and_support_multiple_listeners(observed):
    database, backend, log = observed
    second = StatementLog(backend)
    _seed(database)
    assert len(log) == len(second) == 1
    second.detach()
    _seed(database)
    assert len(log) == 2 and len(second) == 1


def test_database_observe_statements_attaches_to_its_backend():
    database, _backend = _database("sqlite")
    with database.observe_statements() as log:
        _seed(database)
        assert [event.kind for event in log.events] == ["INSERT"]
    database.close()


def test_no_observer_means_no_event_construction(observed):
    database, backend, log = observed
    log.detach()
    assert not backend._observing()
    _seed(database)
    assert log.events == []


def test_statements_feed_db_spans_and_counters_of_the_active_trace():
    database, _backend = _database("sqlite")
    with obs.tracing():
        with obs.trace("query") as trace_:
            _seed(database)
            database.execute(Query(table="Paper"))
    leaves = [span for span in trace_.root.children if span.name == "db.sql"]
    assert [leaf.attributes["kind"] for leaf in leaves] == ["INSERT", "SELECT"]
    select = leaves[1]
    assert select.attributes["sql"] == 'SELECT * FROM "Paper"'
    assert select.attributes["rows"] == 2
    assert select.duration is not None and select.duration >= 0
    assert trace_.counters["db.statements"] == 2
    assert trace_.counters["db.rows"] == 4  # 2 inserted + 2 selected
    database.close()
