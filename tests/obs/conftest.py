"""Shared fixtures for the observability tests.

Every test in this package runs against a clean slate: tracing disabled,
counter totals zeroed and the trace ring emptied, restored again afterwards
so obs state never bleeds into (or out of) other test packages.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
