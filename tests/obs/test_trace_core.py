"""The tracing core: span trees, counters, and the disabled fast path."""

import threading

from repro import obs


# -- disabled: near-zero overhead ------------------------------------------------------


def test_disabled_span_returns_the_shared_noop_singleton():
    assert obs.span("form.fetch") is obs.NOOP
    assert obs.span("anything", key="value") is obs.NOOP


def test_disabled_trace_yields_none_and_stores_nothing():
    with obs.trace("GET /papers") as trace_:
        assert trace_ is None
    assert obs.snapshot()["traces"] == []


def test_disabled_add_changes_no_totals():
    before = obs.totals.snapshot()
    obs.add("policy.evaluations")
    obs.add("db.rows", 100)
    assert obs.totals.snapshot() == before


def test_span_outside_a_trace_is_the_noop_even_when_enabled():
    with obs.tracing():
        assert obs.span("form.fetch") is obs.NOOP


# -- enabled: the span tree -------------------------------------------------------------


def test_trace_builds_a_nested_span_tree_with_durations():
    with obs.tracing():
        with obs.trace("GET /papers", app="conf") as trace_:
            with obs.span("web.view", route="all_papers"):
                with obs.span("form.fetch"):
                    obs.event("plan.bounded", limit=2)
            with obs.span("web.render"):
                pass
    assert trace_.name == "GET /papers"
    assert trace_.duration is not None and trace_.duration >= 0
    view, render = trace_.root.children
    assert (view.name, render.name) == ("web.view", "web.render")
    assert view.attributes == {"route": "all_papers"}
    (fetch,) = view.children
    assert fetch.duration is not None
    assert [leaf.name for leaf in fetch.children] == ["plan.bounded"]
    assert fetch.children[0].duration == 0.0


def test_counters_accumulate_on_trace_span_and_totals():
    with obs.tracing():
        with obs.trace("work") as trace_:
            with obs.span("form.fetch"):
                obs.add("policy.evaluations")
                obs.add("policy.evaluations")
                obs.add("db.rows", 5)
    assert trace_.counters["policy.evaluations"] == 2
    assert trace_.root.children[0].counters["db.rows"] == 5
    assert obs.totals.get("policy.evaluations") == 2
    assert obs.totals.get("db.rows") == 5


def test_finished_traces_are_retrievable_by_id():
    with obs.tracing():
        with obs.trace("GET /one") as trace_:
            pass
    stored = obs.get_trace(trace_.trace_id)
    assert stored is trace_
    assert obs.get_trace("nonexistent") is None
    index = obs.snapshot()["traces"]
    assert [item["trace_id"] for item in index] == [trace_.trace_id]


def test_nested_traces_restore_the_outer_trace():
    with obs.tracing():
        with obs.trace("outer") as outer:
            with obs.trace("inner") as inner:
                assert obs.current_trace() is inner
            assert obs.current_trace() is outer
            obs.add("web.requests")
    assert outer.counters == {"web.requests": 1}
    assert inner.counters == {}


def test_to_dict_serialises_the_whole_tree():
    with obs.tracing():
        with obs.trace("GET /papers") as trace_:
            with obs.span("form.fetch", model="Paper"):
                obs.add("facet.rows.unmarshalled", 6)
    data = trace_.to_dict()
    assert data["trace_id"] == trace_.trace_id
    assert data["counters"] == {"facet.rows.unmarshalled": 6}
    (fetch,) = data["spans"]["children"]
    assert fetch["attributes"] == {"model": "Paper"}
    assert fetch["counters"] == {"facet.rows.unmarshalled": 6}


def test_tree_lines_render_one_line_per_span():
    with obs.tracing():
        with obs.trace("bench") as trace_:
            with obs.span("form.fetch"):
                obs.add("db.statements")
    lines = trace_.tree_lines()
    assert len(lines) == 2
    assert "bench" in lines[0]
    assert "form.fetch" in lines[1] and "db.statements=1" in lines[1]


# -- thread isolation -------------------------------------------------------------------


def test_concurrent_traces_do_not_bleed_counters_across_threads():
    barrier = threading.Barrier(4)
    traces = {}

    def work(index):
        barrier.wait()
        with obs.trace(f"thread-{index}") as trace_:
            for _ in range(index + 1):
                obs.add("policy.evaluations")
        traces[index] = trace_

    with obs.tracing():
        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    for index in range(4):
        assert traces[index].counters == {"policy.evaluations": index + 1}
    # Totals are the exact sum of the per-trace counters: 1 + 2 + 3 + 4.
    assert obs.totals.get("policy.evaluations") == 10


def test_every_counter_used_by_the_instrumentation_is_in_the_glossary():
    # The glossary is the documentation contract: every name the core
    # bumps must map to a paper concept.
    import pathlib
    import re

    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    used = set()
    for path in src.rglob("*.py"):
        used.update(re.findall(r"""add\(\s*["']([a-z_.]+)["']""", path.read_text()))
    missing = used - set(obs.COUNTER_GLOSSARY)
    assert not missing, f"counters missing from COUNTER_GLOSSARY: {sorted(missing)}"
