"""Counter accuracy under concurrent traced requests.

Each worker thread's trace must see exactly its own request's counters
(thread-local span stacks), while the process-wide totals see the exact sum
-- the invariant that makes per-request numbers and ``/metrics`` agree.
"""

import threading

from repro import obs
from repro.apps.conf import ConferencePhase, build_conf_app, seed_conference, setup_conf
from repro.web import TestClient


def test_concurrent_request_traces_do_not_bleed_and_totals_sum():
    form = setup_conf()
    created = seed_conference(form, papers=5, users=8, pc_members=3)
    app = build_conf_app(form)
    try:
        workers = 6
        barrier = threading.Barrier(workers)
        traces = [None] * workers
        errors = []

        def drive(index):
            try:
                client = TestClient(app)
                user = created["users"][index % len(created["users"])]
                client.force_login(user.jid, user.name)
                barrier.wait()
                response = client.get("/papers")
                assert response.ok
                # Each request ran as its own trace (started by handle()).
                traces[index] = obs.get_trace(response.headers["X-Trace-Id"])
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        with obs.tracing():
            obs.reset()
            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            totals = obs.totals.snapshot()

        assert not errors
        for name in ("web.requests", "db.statements", "facet.rows.unmarshalled"):
            per_trace = [trace.counters.get(name, 0) for trace in traces]
            # Every request did real work and recorded it on its own trace...
            assert all(value > 0 for value in per_trace), (name, per_trace)
            # ...and the global totals are exactly the sum of the traces.
            assert totals[name] == sum(per_trace), (name, per_trace, totals[name])
        # One request each: a bled span stack would double-count this.
        assert all(trace.counters["web.requests"] == 1 for trace in traces)
    finally:
        ConferencePhase.reset()
