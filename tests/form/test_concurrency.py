"""Multi-threaded FORM semantics: jid allocation, get_or_create, contexts.

These are the invariants the WSGI serving layer relies on; the concurrent
load benchmark stress-tests the same properties at request granularity.
"""

import threading

import pytest

from repro.db import Database, MemoryBackend, SqliteBackend
from repro.form import (
    CharField,
    FORM,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)
from repro.form.context import current_form, set_default_form, _get_default_form


class ConcUser(JModel):
    name = CharField(max_length=64)
    tag = CharField(max_length=64)


@pytest.fixture(params=["memory", "sqlite"])
def conc_form(request):
    if request.param == "memory":
        database = Database(MemoryBackend())
    else:
        database = Database(SqliteBackend())
    form = FORM(database)
    form.register(ConcUser)
    yield form
    database.close()


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            target(index)
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


def test_concurrent_creates_allocate_unique_jids(conc_form):
    per_thread = 25

    def create_records(index):
        with use_form(conc_form):
            for j in range(per_thread):
                ConcUser.objects.create(name=f"user-{index}-{j}", tag=str(index))

    _run_threads(8, create_records)

    with use_form(conc_form):
        rows = conc_form.database.find("ConcUser")
    jids_by_name = {}
    for row in rows:
        jids_by_name.setdefault(row["name"], set()).add(row["jid"])
    # Every record got exactly one jid, and no jid is shared by two records.
    assert len(jids_by_name) == 8 * per_thread
    all_jids = [jid for jids in jids_by_name.values() for jid in jids]
    assert all(len(jids) == 1 for jids in jids_by_name.values())
    assert len(set(all_jids)) == len(all_jids)


def test_concurrent_get_or_create_yields_single_record(conc_form):
    winners = []

    def race(index):
        with use_form(conc_form):
            user, created = ConcUser.objects.get_or_create(
                name="highlander", defaults={"tag": str(index)}
            )
            if created:
                winners.append(index)

    _run_threads(8, race)

    assert len(winners) == 1
    with use_form(conc_form):
        rows = conc_form.database.find("ConcUser", name="highlander")
    assert len({row["jid"] for row in rows}) == 1


def test_new_threads_inherit_the_default_form():
    database = Database(MemoryBackend())
    form = FORM(database)
    form.register(ConcUser)
    previous = _get_default_form()
    set_default_form(form)
    try:
        seen = []

        def observe():
            # A fresh worker thread must resolve the installed default, not a
            # silently minted empty FORM hiding the app's database.
            seen.append(current_form())
            with use_form(current_form()):
                ConcUser.objects.create(name="from-worker", tag="t")

        thread = threading.Thread(target=observe)
        thread.start()
        thread.join()
        assert seen == [form]
        with use_form(form):
            assert ConcUser.objects.get(name="from-worker") is not None
    finally:
        set_default_form(previous)


def test_register_resumes_jid_counter_on_persistent_database(tmp_path):
    # A fresh process reopening a persistent database must not re-mint jids
    # that already exist on disk.
    path = str(tmp_path / "persist.db")
    first = FORM(Database(SqliteBackend(path)))
    first.register(ConcUser)
    with use_form(first):
        existing = [ConcUser.objects.create(name=f"old{i}", tag="x") for i in range(3)]
    first.database.close()

    reopened = FORM(Database(SqliteBackend(path)))
    reopened.register(ConcUser)
    with use_form(reopened):
        fresh = ConcUser.objects.create(name="new", tag="y")
        rows = reopened.database.find("ConcUser")
    assert fresh.jid > max(record.jid for record in existing)
    jids = {}
    for row in rows:
        jids.setdefault(row["jid"], set()).add(row["name"])
    assert all(len(names) == 1 for names in jids.values())
    reopened.database.close()


def test_use_form_stays_thread_local():
    form_a = FORM(Database(MemoryBackend()))
    observed = []

    with use_form(form_a):
        def observe():
            observed.append(current_form())

        thread = threading.Thread(target=observe)
        thread.start()
        thread.join()
        # The worker sees the process default, not this thread's binding.
        assert observed[0] is not form_a
        assert current_form() is form_a


def test_set_form_binds_only_the_calling_thread():
    from repro.form import set_form

    form_a = FORM(Database(MemoryBackend()))
    main_before = current_form()
    observed = []

    def worker():
        set_form(form_a)
        observed.append(current_form())

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert observed == [form_a]
    # The worker's unscoped binding never leaks into other threads.
    assert current_form() is main_before


def test_readers_never_observe_a_record_mid_update(conc_form):
    # save() on an existing record rewrites its whole facet-row set; the
    # swap is atomic (Backend.replace_rows), so a concurrent reader sees the
    # record before or after the update -- never gone.
    with use_form(conc_form):
        record = ConcUser.objects.create(name="steady", tag="t0")

    stop = threading.Event()
    vanished = []

    def reader(_index):
        with use_form(conc_form):
            while not stop.is_set():
                if ConcUser.objects.get(jid=record.jid) is None:
                    vanished.append(1)

    def writer():
        with use_form(conc_form):
            for i in range(150):
                mine = ConcUser.objects.get(jid=record.jid)
                mine.tag = f"t{i}"
                mine.save()
        stop.set()

    readers = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
    writer_thread = threading.Thread(target=writer)
    for thread in readers + [writer_thread]:
        thread.start()
    for thread in readers + [writer_thread]:
        thread.join()
    assert vanished == []


class GuardedDoc(JModel):
    secret = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_secret(doc):
        return "[public]"

    @staticmethod
    @label_for("secret")
    @jacqueline
    def jacqueline_restrict_secret(doc, viewer):
        if getattr(viewer, "slow", False):
            _GATE_ENTERED.set()
            _GATE_RELEASE.wait(timeout=5)
        return False  # nobody may ever see the secret


_GATE_ENTERED = threading.Event()
_GATE_RELEASE = threading.Event()


def test_policy_reentrancy_guard_is_per_thread():
    # The "optimistically visible while resolving" answer must stay inside
    # the thread doing the resolving: while thread A is mid-resolution,
    # thread B asking about the same label must evaluate the (denying)
    # policy for real, not inherit A's optimistic True.
    _GATE_ENTERED.clear()
    _GATE_RELEASE.clear()
    form = FORM(Database(MemoryBackend()))
    form.register(GuardedDoc)
    with use_form(form):
        GuardedDoc.objects.create(secret="TOPSECRET")

    class Viewer:
        def __init__(self, slow=False):
            self.slow = slow

    leaks = []

    def slow_reader():
        with use_form(form), viewer_context(Viewer(slow=True)):
            docs = GuardedDoc.objects.all().fetch()
            if any(doc.secret == "TOPSECRET" for doc in docs):
                leaks.append("slow")

    def fast_reader():
        assert _GATE_ENTERED.wait(timeout=5)  # A is mid-resolution now
        try:
            with use_form(form), viewer_context(Viewer()):
                docs = GuardedDoc.objects.all().fetch()
                if any(doc.secret == "TOPSECRET" for doc in docs):
                    leaks.append("fast")
        finally:
            _GATE_RELEASE.set()

    threads = [threading.Thread(target=slow_reader), threading.Thread(target=fast_reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert leaks == []


def test_concurrent_saves_of_one_record_leave_consistent_rows(conc_form):
    with use_form(conc_form):
        record = ConcUser.objects.create(name="shared", tag="start")

    def update(index):
        with use_form(conc_form):
            mine = ConcUser.objects.get(jid=record.jid)
            mine.tag = f"tag-{index}"
            mine.save()

    _run_threads(6, update)

    with use_form(conc_form):
        rows = conc_form.database.find("ConcUser", jid=record.jid)
    # One facet row (no policies on ConcUser) with one of the written tags.
    assert len(rows) == 1
    assert rows[0]["tag"] in {f"tag-{i}" for i in range(6)}
