"""Manager helpers: get_or_create, bulk_create and order_by parsing."""

import pytest

from repro.apps.conf.models import ConferencePhase, ConfUser, Paper
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import setup_conf
from repro.db import Database, MemoryBackend
from repro.form import use_form, viewer_context


@pytest.fixture
def conf_form():
    form = setup_conf(Database(MemoryBackend()))
    yield form
    ConferencePhase.reset()


# -- get_or_create ----------------------------------------------------------------------


def test_get_or_create_creates_then_finds(conf_form):
    with use_form(conf_form):
        user, created = ConfUser.objects.get_or_create(
            name="dana", defaults={"email": "dana@conf.org", "level": "pc"}
        )
        assert created is True
        assert user.jid is not None and user.email == "dana@conf.org"
        again, created_again = ConfUser.objects.get_or_create(name="dana")
        assert created_again is False
        assert again.jid == user.jid


def test_get_or_create_rejects_join_lookups_on_create(conf_form):
    with use_form(conf_form):
        with pytest.raises(ValueError):
            Paper.objects.get_or_create(author__name="nobody", title="x")


# -- bulk_create -------------------------------------------------------------------------


def test_bulk_create_matches_per_row_saves(conf_form):
    with use_form(conf_form):
        bulk = ConfUser.objects.bulk_create(
            [ConfUser(name=f"bulk{i}", email=f"b{i}@x.org") for i in range(5)]
        )
        loop = []
        for i in range(5):
            loop.append(ConfUser.objects.create(name=f"loop{i}", email=f"l{i}@x.org"))
        assert all(user.jid is not None for user in bulk)
        assert len({user.jid for user in bulk + loop}) == 10
        chair = ConfUser.objects.create(name="c", level="chair")
        with viewer_context(chair):
            names = {u.name for u in ConfUser.objects.all().fetch()}
            emails = {u.email for u in ConfUser.objects.all().fetch()}
    assert {f"bulk{i}" for i in range(5)} <= names
    assert {f"loop{i}" for i in range(5)} <= names
    # The chair sees the secret facet of bulk-created rows too.
    assert {f"b{i}@x.org" for i in range(5)} <= emails


def test_bulk_create_writes_one_event_per_table(conf_form):
    events = []
    conf_form.database.invalidation.subscribe(events.append)
    with use_form(conf_form):
        ConfUser.objects.bulk_create(
            [ConfUser(name=f"u{i}") for i in range(10)]
        )
    assert events == ["ConfUser"]


def test_bulk_create_falls_back_for_saved_instances(conf_form):
    with use_form(conf_form):
        existing = ConfUser.objects.create(name="old", email="old@x.org")
        existing.email = "new@x.org"
        ConfUser.objects.bulk_create([existing, ConfUser(name="fresh")])
        chair = ConfUser.objects.create(name="c2", level="chair")
        with viewer_context(chair):
            assert ConfUser.objects.get(name="old").email == "new@x.org"
            assert ConfUser.objects.get(name="fresh") is not None


def test_seed_uses_bulk_writes(conf_form):
    """Seeding issues a bounded number of write events, not one per row."""
    events = []
    conf_form.database.invalidation.subscribe(events.append)
    seed_conference(conf_form, papers=16)
    # chair (1 insert) + one bulk write per seeded kind; far fewer events
    # than the ~100+ facet rows written.
    assert len(events) < 10


# -- order_by ---------------------------------------------------------------------------


def test_order_by_ascending_and_descending(conf_form):
    with use_form(conf_form):
        for name in ("mallory", "alice", "zoe"):
            ConfUser.objects.create(name=name)
        chair = ConfUser.objects.create(name="bob", level="chair")
        with viewer_context(chair):
            ascending = [u.name for u in ConfUser.objects.all().order_by("name")]
            descending = [u.name for u in ConfUser.objects.all().order_by("-name")]
    assert ascending == sorted(ascending)
    assert descending == sorted(descending, reverse=True)


@pytest.mark.parametrize("bad", ["", "-", "--name", "---name"])
def test_order_by_rejects_malformed_fields(conf_form, bad):
    with use_form(conf_form):
        with pytest.raises(ValueError):
            ConfUser.objects.all().order_by(bad)
