"""Chunked batched-rewrite writes past SQLite's bound-variable limit.

SQLite rejects statements carrying more than SQLITE_MAX_VARIABLE_NUMBER
(32766 by default) parameters, so a batched facet rewrite matching more
records than that used to die with "too many SQL variables" on its
``jid IN (?, ...)`` fetch and replace.  The write paths now chunk at
``writes.MAX_BOUND_VARIABLES``; these tests pin both the raw SQLite
regression (>32766 jids) and the end-to-end semantics of every chunked
path (via a lowered chunk size, so the suite stays fast).
"""

import pytest

from repro.db import Database, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
)
from repro.form import writes
from repro.form.manager import QuerySet, _replace_rows_chunked


class Note(JModel):
    body = CharField(max_length=64)
    rank = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_body(note):
        return "[redacted]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(note, ctxt):
        return ctxt is not None


def _sqlite_form():
    backend = SqliteBackend()
    form = FORM(Database(backend))
    form.register_all([Note])
    return form, backend


def test_chunked_splits_only_past_the_bound():
    assert writes.chunked([1, 2, 3]) == [[1, 2, 3]]
    assert writes.chunked(list(range(7)), size=3) == [[0, 1, 2], [3, 4, 5], [6]]


def test_rewrite_survives_more_jids_than_sqlite_allows_variables():
    # The raw regression: 33,000 records is past SQLITE_MAX_VARIABLE_NUMBER
    # (32766), so an unchunked IN (?, ...) fetch or replace raises
    # sqlite3.OperationalError("too many SQL variables").
    count = 33_000
    form, _backend = _sqlite_form()
    rows = [
        {"jid": jid, "jvars": "", "body": f"n{jid}", "rank": 0}
        for jid in range(1, count + 1)
    ]
    form.database.insert_many("Note", rows)
    jids = list(range(1, count + 1))

    fetched = QuerySet._rows_for_jids(form, Note._meta, jids)
    assert len(fetched) == count

    for row in fetched:
        row["rank"] = 7
    with form._save_lock:
        _replace_rows_chunked(form, "Note", jids, fetched)
    assert form.database.count("Note") == count
    assert all(row["rank"] == 7 for row in form.database.rows("Note"))


def test_update_fallback_chunks_and_stays_correct(monkeypatch):
    monkeypatch.setattr(writes, "MAX_BOUND_VARIABLES", 5)
    form, backend = _sqlite_form()
    with use_form(form):
        notes = Note.objects.bulk_create([Note(body=f"n{i}") for i in range(12)])
        with StatementLog(backend) as log:
            # "body" is policied: the batched facet rewrite runs, now split
            # into ceil(12 / 5) = 3 chunked fetches and 3 chunked replaces.
            changed = Note.objects.all().update(body="same")
            assert changed == 24  # 12 records x 2 facet rows
            selects = [s for s in log.statements if "jid IN (" in s]
            replaces = [e for e in log.events if e.kind == "REPLACE"]
            assert len(selects) == 3
            assert len(replaces) == 3
        rows = form.database.rows("Note")
        assert len(rows) == 24
        assert sorted(set(row["body"] for row in rows)) == ["[redacted]", "same"]
        assert {note.jid for note in notes} == {row["jid"] for row in rows}


def test_bulk_update_chunks_the_replace(monkeypatch):
    monkeypatch.setattr(writes, "MAX_BOUND_VARIABLES", 4)
    form, backend = _sqlite_form()
    with use_form(form):
        notes = Note.objects.bulk_create([Note(body=f"n{i}") for i in range(10)])
        for note in notes:
            note.rank = 3
        with StatementLog(backend) as log:
            Note.objects.bulk_update(notes)
            replaces = [e for e in log.events if e.kind == "REPLACE"]
            assert len(replaces) == 3  # ceil(10 / 4)
        assert all(row["rank"] == 3 for row in form.database.rows("Note"))
        assert form.database.count("Note") == 20


def test_chunked_update_matches_unchunked_result(monkeypatch):
    results = {}
    for label, bound in (("unchunked", 30_000), ("chunked", 3)):
        monkeypatch.setattr(writes, "MAX_BOUND_VARIABLES", bound)
        form, _backend = _sqlite_form()
        with use_form(form):
            Note.objects.bulk_create(
                [Note(body=f"n{i}", rank=i) for i in range(9)]
            )
            Note.objects.filter().update(body="x")
            results[label] = sorted(
                (row["jid"], row["jvars"], row["body"], row["rank"])
                for row in form.database.rows("Note")
            )
    assert results["chunked"] == results["unchunked"]
