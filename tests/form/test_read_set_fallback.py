"""Read-set-forced fallback: the staleness regression the analyzer closes.

A ``jacqueline_get_public_*`` method may derive its value from a
*non-policied* column.  Before read-set integration, a fast-path
``QuerySet.update()`` of that column rewrote it in place and left the
stored public snapshot stale -- the "Known limit" previously documented on
``fast_path_values``.  With :mod:`repro.analysis.readsets` feeding the
write decision procedure, such an update is forced onto the batched facet
rewrite, which recomputes every public facet.
"""

import pytest

from repro import obs
from repro.db import Database, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
)


class Memo(JModel):
    """The public title *derives from the non-policied* ``priority``."""

    title = CharField(max_length=128)
    priority = IntegerField(default=0)
    body = CharField(max_length=256, default="")

    @staticmethod
    def jacqueline_get_public_title(memo):
        return f"memo (priority {memo.priority})"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(memo, ctxt):
        return ctxt is not None and getattr(ctxt, "name", None) == "owner"


class Opaque(JModel):
    """A public method the analyzer cannot see through: read set TOP."""

    data = CharField(max_length=64)
    extra = CharField(max_length=64, default="")

    @staticmethod
    def jacqueline_get_public_data(blob):
        # The attribute name is computed, so inference cannot resolve it
        # (TOP) -- but the method still runs fine during rewrites.
        return getattr(blob, "ext" + "ra", None)

    @staticmethod
    @label_for("data")
    @jacqueline
    def jacqueline_restrict_data(blob, ctxt):
        return False


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _make_form(kind, models):
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(database)
    form.register_all(models)
    return form, database


@pytest.fixture(params=["memory", "sqlite"])
def memo_form(request):
    form, database = _make_form(request.param, [Memo, Opaque])
    with use_form(form):
        yield form
    if request.param == "sqlite":
        database.close()


def _public_titles(form, jid):
    return [
        row["title"]
        for row in form.database.find("Memo", jid=jid)
        if "=False" in row["jvars"]
    ]


def test_meta_caches_the_inferred_public_read_set():
    meta = Memo._meta
    assert meta.public_read_columns() == frozenset({"priority"})
    # Cached: the AST work happens once per model class.
    assert meta.public_read_columns() is meta.public_read_columns()
    assert Opaque._meta.public_read_columns() is None  # TOP


def test_fast_path_update_of_a_read_column_recomputes_public_facets(memo_form):
    memo = Memo.objects.create(title="q3 planning", priority=1)
    assert _public_titles(memo_form, memo.jid) == ["memo (priority 1)"]

    # priority is not policied and the value is concrete: without read-set
    # forcing this compiles to one in-place UPDATE and the stored public
    # title above would keep saying "priority 1".
    changed = Memo.objects.filter(title="q3 planning").update(priority=9)
    assert changed == 2  # both facet rows rewritten

    rows = memo_form.database.find("Memo", jid=memo.jid)
    assert all(row["priority"] == 9 for row in rows)
    assert _public_titles(memo_form, memo.jid) == ["memo (priority 9)"]


def test_forced_fallback_is_counted_and_skips_the_fast_path(memo_form):
    Memo.objects.create(title="t", priority=0)
    with obs.tracing():
        Memo.objects.all().update(priority=5)
    assert obs.totals.get("writes.forced_fallback.read_set") == 1
    assert obs.totals.get("writes.fallback") == 1
    assert obs.totals.get("writes.fast_path") == 0


def test_update_of_an_unread_column_keeps_the_fast_path(memo_form):
    memo = Memo.objects.create(title="t", priority=2)
    with obs.tracing():
        Memo.objects.all().update(body="minutes attached")
    assert obs.totals.get("writes.fast_path") == 1
    assert obs.totals.get("writes.forced_fallback.read_set") == 0
    # The snapshot untouched by the in-place write is still correct.
    assert _public_titles(memo_form, memo.jid) == ["memo (priority 2)"]


def test_top_read_set_forces_every_eligible_update(memo_form):
    Opaque.objects.create(data="s3cret", extra="x")
    with obs.tracing():
        Opaque.objects.all().update(extra="y")
    assert obs.totals.get("writes.forced_fallback.read_set") == 1
    assert obs.totals.get("writes.fast_path") == 0


def test_forced_update_is_batched_not_per_record_on_sqlite():
    backend = SqliteBackend()
    form = FORM(Database(backend))
    form.register_all([Memo, Opaque])
    with use_form(form):
        for index in range(4):
            Memo.objects.create(title=f"m{index}", priority=index)
        with StatementLog(backend) as log:
            Memo.objects.all().update(priority=7)
        # Forced path == the batched rewrite: jid projection + row fetch +
        # replace batch, never one statement per record -- and no single
        # in-place UPDATE, which would have left the snapshots stale.
        assert not any(s.startswith("UPDATE") for s in log.statements)
        assert len(log.statements) < 4 + 2


def test_explain_names_the_forced_path(memo_form):
    report = Memo.objects.filter(priority=1).explain(
        operation="update", priority=3
    )
    assert report["path"] == "fallback"
    assert report["plan"] == "batched-facet-rewrite"
    assert report["forced_by"] == "read_set"
    assert report["forced_columns"] == ["priority"]

    fast = Memo.objects.all().explain(operation="update", body="b")
    assert fast["path"] == "fast"
    assert "forced_by" not in fast

    top = Opaque.objects.all().explain(operation="update", extra="z")
    assert top["path"] == "fallback"
    assert top["forced_columns"] == ["*"]
