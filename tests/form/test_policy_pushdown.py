"""Policy pushdown: Early Pruning compiled into the SQL statement.

The PR 8 tentpole, extended with the symbolic tiers.  On models whose
policies classify as viewer-independent or equality-on-viewer, a
viewer-context ``fetch()``, ``count()`` or ``aggregate()`` appends a
pruning predicate and the database prunes -- one statement on both
backends.  The predicate now has tiers: ``direct``/``indexable`` render
the compiled symbolic predicate inline (no label store in the statement),
``store`` falls back to

    jvars = '' OR jvars IN (SELECT jvars FROM "__jacq_labels__"
                            WHERE table_name = ? AND viewer_key = ?)

populated by the same Python resolver Early Pruning uses.  Runtime
demotion (bind failures, exotic facet rows, the ``policy_pushdown_tier_cap``
knob) steps inline tiers down to the store, never straight to Python.
Opaque policies, bounded sets, pc-labelled rows and unknown viewers keep
the Python path, which doubles as the oracle throughout
(``form.policy_pushdown_enabled = False``).
"""

import pytest

from repro import obs
from repro.cache.config import CacheConfig
from repro.cache.epoch import bump_policy_epoch
from repro.core.labels import Label
from repro.db import Database, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)
from repro.form.pushdown import STORE_TABLE, profile_for


class Owner(JModel):
    name = CharField(max_length=64)


class Doc(JModel):
    """Equality-on-viewer policy reading only its own row: narrow pushdown."""

    owner = ForeignKey(Owner)
    title = CharField(max_length=128)
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[secret]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(doc, ctxt):
        return ctxt is not None and doc.owner_id == ctxt.jid


class Audit(JModel):
    """Equality-on-viewer policy that queries another model: eligible but
    *broad* -- outcomes may depend on Owner rows, so any write invalidates."""

    owner = ForeignKey(Owner)
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(audit):
        return "[redacted]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(audit, ctxt):
        owner = Owner.objects.get(jid=audit.owner_id)
        return owner is not None and ctxt is not None and owner.jid == ctxt.jid


class Vault(JModel):
    """A policy body the classifier cannot shape: opaque, Python fallback."""

    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(vault):
        return "[vault]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(vault, ctxt):
        granted = False
        for _letter in getattr(ctxt, "name", "") or "":
            granted = not granted
        return granted


class Wiki(JModel):
    """Prefix-on-viewer policy over a non-nullable column: indexable tier."""

    path = CharField(max_length=64, nullable=False, default="/")
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(page):
        return "[wiki]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(page, ctxt):
        return ctxt is not None and page.path.startswith(ctxt.name)


class Badge(JModel):
    """Direct-shaped policy whose bound value can mismatch the column kind
    (int column vs. text viewer attribute): binding demotes to the store
    tier at runtime, never to Python."""

    code = IntegerField(default=0)
    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(badge):
        return "[badge]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(badge, ctxt):
        return badge.code == getattr(ctxt, "name", None)


MODELS = [Owner, Doc, Audit, Vault, Wiki, Badge]


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _make_form(kind, cache_config=None):
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(
        database,
        cache_config=cache_config if cache_config is not None else CacheConfig.disabled(),
    )
    form.register_all(MODELS)
    return form, database


@pytest.fixture(params=["memory", "sqlite"])
def pushdown_form(request):
    form, database = _make_form(request.param)
    with use_form(form):
        yield form
    database.close()


def _seed_docs(form):
    ada = Owner.objects.create(name="ada")
    bob = Owner.objects.create(name="bob")
    for index in range(4):
        Doc.objects.create(
            owner=ada if index % 2 else bob, title=f"t{index}", score=index
        )
    return ada, bob


def _oracle(form, run):
    """Run ``run`` on the Python pruning path (the differential oracle)."""
    form.policy_pushdown_enabled = False
    try:
        return run()
    finally:
        form.policy_pushdown_enabled = True


def test_profiles_classify_the_three_shapes():
    doc = profile_for(Doc)
    assert (doc.eligible, doc.narrow, doc.opaque) == (True, True, False)
    audit = profile_for(Audit)
    assert (audit.eligible, audit.narrow, audit.opaque) == (True, False, False)
    vault = profile_for(Vault)
    assert (vault.eligible, vault.opaque) == (False, True)
    plain = profile_for(Owner)
    assert (plain.eligible, plain.narrow) == (True, True)


def test_profiles_report_the_symbolic_tier():
    assert profile_for(Doc).tier == "direct"
    assert profile_for(Wiki).tier == "indexable"
    assert profile_for(Badge).tier == "direct"
    assert profile_for(Audit).tier == "store"  # ORM query in the body: TOP
    assert profile_for(Vault).tier == "opaque"
    assert profile_for(Owner).tier == "none"  # no policy groups at all
    assert profile_for(Doc).predicate is not None
    assert profile_for(Audit).predicate is None


def test_fetch_is_one_statement_with_parity(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with obs.tracing(), viewer_context(ada):
        Doc.objects.all().fetch()  # warm the one-time branch-key probe
        with pushdown_form.database.observe_statements() as log:
            docs = Doc.objects.all().fetch()
        # The direct tier renders the predicate inline: one statement that
        # never touches (or populates) the label-assignment store.
        assert len(log.statements) == 1
        assert STORE_TABLE not in log.statements[0]
        titles = sorted(doc.title for doc in docs)
        oracle = _oracle(
            pushdown_form,
            lambda: sorted(doc.title for doc in Doc.objects.all().fetch()),
        )
    assert obs.totals.get("plan.policy_pushdown.direct") >= 1
    assert titles == oracle
    assert titles == ["[secret]", "[secret]", "t1", "t3"]


def test_store_tier_cap_restores_the_store_statement(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    pushdown_form.policy_pushdown_tier_cap = "store"
    with obs.tracing(), viewer_context(ada):
        Doc.objects.all().fetch()  # warm the label-assignment store
        with pushdown_form.database.observe_statements() as log:
            docs = Doc.objects.all().fetch()
        assert len(log.statements) == 1
        assert STORE_TABLE in log.statements[0]
        titles = sorted(doc.title for doc in docs)
        oracle = _oracle(
            pushdown_form,
            lambda: sorted(doc.title for doc in Doc.objects.all().fetch()),
        )
    assert obs.totals.get("plan.policy_pushdown.direct") == 0
    assert titles == oracle
    assert titles == ["[secret]", "[secret]", "t1", "t3"]


def test_indexable_tier_compiles_prefix_policies_to_ranges(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    Wiki.objects.create(path="ada/notes", body="ada's notes")
    Wiki.objects.create(path="bob/notes", body="bob's notes")
    with obs.tracing(), viewer_context(ada):
        Wiki.objects.all().fetch()  # warm the one-time branch-key probe
        with pushdown_form.database.observe_statements() as log:
            pages = Wiki.objects.all().order_by("path").fetch()
        assert len(log.statements) == 1
        assert STORE_TABLE not in log.statements[0]
        bodies = [page.body for page in pages]
        oracle = _oracle(
            pushdown_form,
            lambda: [
                page.body
                for page in Wiki.objects.all().order_by("path").fetch()
            ],
        )
    assert obs.totals.get("plan.policy_pushdown.indexable") >= 1
    assert bodies == oracle
    assert bodies == ["ada's notes", "[wiki]"]


def test_kind_mismatch_demotes_to_the_store_tier(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    Badge.objects.create(code=7, body="lucky")
    with obs.tracing(), viewer_context(ada):
        with pushdown_form.database.observe_statements() as log:
            bodies = [badge.body for badge in Badge.objects.all().fetch()]
        # Statically direct, but the bound value ("ada", text) cannot probe
        # the int column soundly: the query demotes to the store tier --
        # still one pushed statement, never the Python path.
        assert len(log.statements) >= 1
        assert STORE_TABLE in log.statements[-1]
        oracle = _oracle(
            pushdown_form,
            lambda: [badge.body for badge in Badge.objects.all().fetch()],
        )
    assert obs.totals.get("plan.policy_pushdown.direct") == 0
    assert obs.totals.get("plan.policy_pushdown") >= 1
    assert bodies == oracle == ["[badge]"]


def test_count_and_exists_are_one_statement_with_parity(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        Doc.objects.all().count()  # warm the one-time branch-key probe
        with pushdown_form.database.observe_statements() as log:
            count = Doc.objects.all().count()
        assert len(log.statements) == 1
        assert STORE_TABLE not in log.statements[0]
        assert count == _oracle(pushdown_form, Doc.objects.all().count)
        assert count == 4  # every record stays visible; titles facet instead
        assert Doc.objects.filter(score=2).exists() is True
        assert Doc.objects.filter(score=9).exists() is False


def test_aggregates_are_one_statement_with_parity(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        Doc.objects.all().avg("score")  # warm
        with pushdown_form.database.observe_statements() as log:
            average = Doc.objects.all().avg("score")
        assert len(log.statements) == 1
        for function in ("sum", "min", "max", "avg"):
            query_set = Doc.objects.all()
            assert getattr(query_set, function)("score") == _oracle(
                pushdown_form, lambda: getattr(Doc.objects.all(), function)("score")
            )
    assert average == 1.5


def test_update_is_one_statement_in_a_viewer_context(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        with pushdown_form.database.observe_statements() as log:
            changed = Doc.objects.filter(score=0).update(score=10)
        assert changed >= 1
        assert len(log.statements) == 1
        assert log.statements[0].startswith('UPDATE "Doc"')


def test_explain_sql_string_equals_the_executed_statement(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        Doc.objects.all().fetch()  # warm
        report = Doc.objects.all().explain()
        assert report["mode"] == "policy-pushdown"
        assert report["tier"] == "direct"
        with pushdown_form.database.observe_statements() as log:
            Doc.objects.all().fetch()
        assert log.statements == [report["sql"]]
        report = Doc.objects.all().explain("count")
        assert report["mode"] == "policy-pushdown"
        assert report["tier"] == "direct"
        with pushdown_form.database.observe_statements() as log:
            Doc.objects.all().count()
        assert log.statements == [report["sql"]]


def test_explain_reports_the_tier_per_knob_and_model(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    Wiki.objects.create(path="ada/notes", body="n")
    with viewer_context(ada):
        assert Wiki.objects.all().explain()["tier"] == "indexable"
        Audit.objects.all().fetch()  # warm the store for Audit
        assert Audit.objects.all().explain()["tier"] == "store"
        pushdown_form.policy_pushdown_tier_cap = "store"
        try:
            Doc.objects.all().fetch()  # warm the store for Doc
            report = Doc.objects.all().explain()
            assert report["tier"] == "store"
            with pushdown_form.database.observe_statements() as log:
                Doc.objects.all().fetch()
            assert log.statements == [report["sql"]]
        finally:
            pushdown_form.policy_pushdown_tier_cap = None


def test_explain_executes_no_statements(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        with pushdown_form.database.observe_statements() as log:
            Doc.objects.all().explain()
            Doc.objects.all().explain("count")
        assert log.statements == []


def test_opaque_policy_falls_back_and_is_counted(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    Vault.objects.create(body="launch codes")
    with obs.tracing(), viewer_context(ada):
        vaults = Vault.objects.all().fetch()
    assert obs.totals.get("plan.policy_pushdown") == 0
    assert obs.totals.get("plan.policy_pushdown.opaque_fallback") >= 1
    # name "ada" has odd length: the opaque policy grants access.
    assert [vault.body for vault in vaults] == ["launch codes"]


def test_disabled_flag_forces_the_python_path(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    pushdown_form.policy_pushdown_enabled = False
    with obs.tracing(), viewer_context(ada):
        titles = sorted(doc.title for doc in Doc.objects.all().fetch())
        assert Doc.objects.all().explain()["mode"] == "pruned"
    assert obs.totals.get("plan.policy_pushdown") == 0
    assert titles == ["[secret]", "[secret]", "t1", "t3"]


def test_bounded_sets_and_first_stay_on_the_python_path(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with obs.tracing(), viewer_context(ada):
        bounded = Doc.objects.all().order_by("score").limited(2).fetch()
        assert len(bounded) == 2
        first = Doc.objects.all().order_by("-score").first()
        assert first is not None and first.score == 3
    assert obs.totals.get("plan.policy_pushdown") == 0


def test_own_table_write_invalidates_a_narrow_store(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        before = sorted(doc.title for doc in Doc.objects.all().fetch())
        Doc.objects.create(owner=ada, title="t9", score=9)
        after = sorted(doc.title for doc in Doc.objects.all().fetch())
    assert "t9" not in before and "t9" in after


def test_unrelated_write_does_not_refresh_a_narrow_store(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    pushdown_form.policy_pushdown_tier_cap = "store"  # exercise the store tier
    with viewer_context(ada):
        Doc.objects.all().fetch()  # warm: one refresh
        Owner.objects.create(name="carol")  # unrelated to Doc's outcomes
        with obs.tracing():
            Doc.objects.all().fetch()
    assert obs.totals.get("plan.policy_pushdown") == 1
    assert obs.totals.get("pushdown.store.refresh") == 0


def test_any_write_refreshes_a_broad_store(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    Audit.objects.create(owner=ada, body="ada only")
    with viewer_context(ada):
        assert [audit.body for audit in Audit.objects.all().fetch()] == ["ada only"]
        Owner.objects.create(name="carol")  # Audit outcomes read Owner rows
        with obs.tracing():
            Audit.objects.all().fetch()
    assert obs.totals.get("plan.policy_pushdown") == 1
    assert obs.totals.get("pushdown.store.refresh") >= 1


def test_policy_epoch_bump_refreshes_the_store(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    pushdown_form.policy_pushdown_tier_cap = "store"  # exercise the store tier
    with viewer_context(ada):
        Doc.objects.all().fetch()  # warm
        bump_policy_epoch()
        with obs.tracing():
            Doc.objects.all().fetch()
    assert obs.totals.get("pushdown.store.refresh") >= 1


def test_pc_labelled_rows_force_the_python_fallback(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    label = Label(hint="branch")
    pushdown_form.runtime.policy_env.declare(label)
    pushdown_form.runtime.policy_env.restrict(
        label, lambda viewer: getattr(viewer, "name", None) == "ada"
    )
    with pushdown_form.runtime.under_branch(label, True):
        Doc.objects.create(owner=ada, title="guarded", score=7)
    with obs.tracing(), viewer_context(ada):
        titles = sorted(doc.title for doc in Doc.objects.all().fetch())
        oracle = _oracle(
            pushdown_form,
            lambda: sorted(doc.title for doc in Doc.objects.all().fetch()),
        )
    # The pc label is not a model label: population fails, the Python path
    # prunes, and the two paths agree bit for bit.
    assert obs.totals.get("plan.policy_pushdown") == 0
    assert titles == oracle
    assert "guarded" in titles


def test_no_cross_viewer_leak_with_caches_enabled():
    form, database = _make_form("sqlite", cache_config=CacheConfig())
    with use_form(form):
        ada, bob = _seed_docs(form)
        for _round in range(2):  # second round hits the per-viewer cache
            with viewer_context(ada):
                ada_titles = sorted(d.title for d in Doc.objects.all().fetch())
            with viewer_context(bob):
                bob_titles = sorted(d.title for d in Doc.objects.all().fetch())
            assert ada_titles == ["[secret]", "[secret]", "t1", "t3"]
            assert bob_titles == ["[secret]", "[secret]", "t0", "t2"]
    database.close()


def test_clear_resets_the_store(pushdown_form):
    ada, _bob = _seed_docs(pushdown_form)
    with viewer_context(ada):
        Doc.objects.all().fetch()
    pushdown_form.clear()
    ada = Owner.objects.create(name="ada")
    Doc.objects.create(owner=ada, title="fresh", score=1)
    with viewer_context(ada):
        assert [doc.title for doc in Doc.objects.all().fetch()] == ["fresh"]
