"""Tests for jvars marshalling and faceted reconstruction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.facets import Facet, UNASSIGNED, project_assignment
from repro.core.labels import Label
from repro.form.marshal import (
    branches_consistent_with,
    build_faceted_collection,
    build_faceted_record,
    expand_value_facets,
    format_jvars,
    label_name_for,
    parse_jvars,
)


def test_format_and_parse_jvars_roundtrip():
    branches = (("k2", False), ("k1", True))
    text = format_jvars(branches)
    assert text == "k1=True,k2=False"
    assert parse_jvars(text) == (("k1", True), ("k2", False))
    assert parse_jvars("") == ()
    assert parse_jvars(None) == ()
    assert format_jvars(()) == ""


def test_parse_jvars_rejects_malformed_entries():
    with pytest.raises(ValueError):
        parse_jvars("k1True")


def test_label_name_is_deterministic():
    assert label_name_for("Event", 3, "name") == "Event.3.name"
    assert label_name_for("Event", 3, "name") == label_name_for("Event", 3, "name")


def test_branches_consistent_with():
    branches = (("k", True), ("m", False))
    assert branches_consistent_with(branches, {"k": True})
    assert not branches_consistent_with(branches, {"m": True})
    assert branches_consistent_with((), {"k": False})


def test_build_faceted_record_two_rows():
    secret = {"name": "party"}
    public = {"name": "private"}
    record = build_faceted_record([((("k", True),), secret), ((("k", False),), public)])
    assert isinstance(record, Facet)
    assert record.label.name == "k"
    assert record.high == secret and record.low == public


def test_build_faceted_record_missing_side_is_unassigned():
    record = build_faceted_record([((("k", True),), "only-secret")])
    assert record.high == "only-secret"
    assert record.low is UNASSIGNED


def test_build_faceted_collection_mixed_visibility():
    entries = [
        ((("k", True),), "secret-row"),
        ((), "always-visible"),
    ]
    collection = build_faceted_collection(entries)
    assert isinstance(collection, Facet)
    assert collection.high == ["secret-row", "always-visible"]
    assert collection.low == ["always-visible"]


def test_build_faceted_collection_multiple_labels():
    entries = [
        ((("a", True),), "A"),
        ((("b", True),), "B"),
    ]
    collection = build_faceted_collection(entries)
    label_a, label_b = Label(name="a"), Label(name="b")
    assert project_assignment(collection, {label_a: True, label_b: True}) == ["A", "B"]
    assert project_assignment(collection, {label_a: False, label_b: True}) == ["B"]
    assert project_assignment(collection, {label_a: False, label_b: False}) == []


def test_expand_value_facets_plain_values():
    rows = expand_value_facets({"x": 1, "y": "two"})
    assert rows == [((), {"x": 1, "y": "two"})]


def test_expand_value_facets_with_facets():
    label = Label(name="L")
    rows = expand_value_facets({"x": Facet(label, 1, 2), "y": "const"})
    assert len(rows) == 2
    mapping = {dict(branches)["L"]: values for branches, values in rows}
    assert mapping[True] == {"x": 1, "y": "const"}
    assert mapping[False] == {"x": 2, "y": "const"}


def test_expand_value_facets_drops_irrelevant_labels():
    label = Label(name="L")
    # The facet has identical sides, so the label does not influence the row.
    rows = expand_value_facets({"x": Facet(label, 5, 5)})
    assert rows == [((), {"x": 5})]


@given(
    st.lists(
        st.tuples(
            st.sets(st.sampled_from(["a", "b", "c"]), max_size=2),
            st.integers(min_value=0, max_value=99),
        ),
        min_size=1,
        max_size=6,
    ),
    st.dictionaries(st.sampled_from(["a", "b", "c"]), st.booleans()),
)
@settings(max_examples=80)
def test_property_collection_projection_matches_row_filtering(raw_entries, assignment):
    """Projecting the rebuilt collection equals filtering rows by branches."""
    entries = [
        (tuple((name, True) for name in sorted(labels)), payload)
        for labels, payload in raw_entries
    ]
    collection = build_faceted_collection(entries)
    label_assignment = {Label(name=name): value for name, value in assignment.items()}
    projected = project_assignment(collection, label_assignment)
    expected = [
        payload
        for branches, payload in entries
        if all(assignment.get(name, False) == polarity for name, polarity in branches)
    ]
    assert projected == expected
