"""Regression tests for the faceted-query fixes, on both backends.

Three bugs, each previously reproducible:

1. ``QuerySet.limited(n)`` was silently dropped when the query had joins;
2. SQL ``LIMIT`` counted facet *rows*, so a record whose facets span
   several rows could be truncated to the wrong facet or undercounted;
3. ``order_by`` columns were never table-qualified under joins, raising
   "ambiguous column name" on SQLite for shared column names.
"""

import pytest

from repro.db import Database, MemoryBackend, SqliteBackend
from repro.form import (
    CharField,
    FORM,
    ForeignKey,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class RegAuthor(JModel):
    name = CharField(max_length=64)
    rank = CharField(max_length=64)


class RegBook(JModel):
    # ``name`` exists on both tables: ordering by it under a join is
    # ambiguous unless qualified (bug 3).
    name = CharField(max_length=64)
    author = ForeignKey(RegAuthor)


class RegSecret(JModel):
    """A model whose records always span two facet rows (public + secret)."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


@pytest.fixture(params=["memory", "sqlite"])
def reg_form(request):
    if request.param == "memory":
        database = Database(MemoryBackend())
    else:
        backend = SqliteBackend()
        database = Database(backend)
    form = FORM(database)
    form.register_all([RegAuthor, RegBook, RegSecret])
    with use_form(form):
        yield form
    database.close()


class Viewer:
    def __init__(self, name):
        self.name = name


def _seed_books():
    authors = {}
    for name in ("ada", "bob"):
        authors[name] = RegAuthor.objects.create(name=name, rank="x")
    # Book names deliberately collide across authors and with author names.
    for index in range(4):
        RegBook.objects.create(name=f"book{index}", author=authors["ada"])
    for index in range(4, 6):
        RegBook.objects.create(name=f"book{index}", author=authors["bob"])
    return authors


# -- bug 1: limit dropped under joins ---------------------------------------------------


def test_limit_applies_to_joined_queries(reg_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = RegBook.objects.filter(author__name="ada").limited(2).fetch()
    assert len(books) == 2


def test_joined_query_without_limit_unchanged(reg_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = RegBook.objects.filter(author__name="ada").fetch()
    assert len(books) == 4


# -- bug 2: limit must count records (jids), not facet rows ------------------------------


def test_limit_counts_records_not_facet_rows(reg_form):
    # Each record stores two facet rows; a raw row LIMIT of n would return
    # only ceil(n/2) complete records (or split one record's facets).
    for index in range(5):
        RegSecret.objects.create(title=f"title{index}", owner="alice")
    with viewer_context(Viewer("alice")):
        visible = RegSecret.objects.all().limited(3).fetch()
    assert len(visible) == 3
    # The owner sees the secret facet of every returned record.
    assert all(record.title.startswith("title") for record in visible)


def test_limit_keeps_both_facets_of_kept_records(reg_form):
    for index in range(4):
        RegSecret.objects.create(title=f"title{index}", owner="alice")
    # A stranger sees the public facet; with the old row-level LIMIT the
    # kept rows could all be secret facets, hiding the records entirely.
    with viewer_context(Viewer("stranger")):
        visible = RegSecret.objects.all().limited(2).fetch()
    assert len(visible) == 2
    assert all(record.title == "[redacted]" for record in visible)


def test_faceted_limit_outside_viewer_context(reg_form):
    for index in range(4):
        RegSecret.objects.create(title=f"title{index}", owner="alice")
    collection = RegSecret.objects.all().limited(2).fetch()
    owner_view = reg_form.runtime.concretize(collection, Viewer("alice"))
    stranger_view = reg_form.runtime.concretize(collection, Viewer("bob"))
    assert len(owner_view) == 2
    assert len(stranger_view) == 2
    assert all(record.title.startswith("title") for record in owner_view)
    assert all(record.title == "[redacted]" for record in stranger_view)


# -- bug 3: order_by under joins --------------------------------------------------------


def test_order_by_shared_column_name_under_join(reg_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        # "name" exists on RegBook and RegAuthor: unqualified, SQLite raises
        # "ambiguous column name"; the in-memory engine picked an arbitrary
        # table.  Qualified, it orders by the base table's column.
        books = RegBook.objects.filter(author__name="ada").order_by("-name").fetch()
    assert [book.name for book in books] == ["book3", "book2", "book1", "book0"]


def test_order_by_with_join_and_limit(reg_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = (
            RegBook.objects.filter(author__name="ada")
            .order_by("-name")
            .limited(2)
            .fetch()
        )
    assert [book.name for book in books] == ["book3", "book2"]
