"""Aggregates under facets: the FORM's jvars-partition pushdown.

``count()``, ``exists()`` and ``aggregate()/sum()/avg()/min()/max()`` must
compile to one grouped SQL statement, merge per-partition aggregates into
per-world results identical to the row-fetching path, respect policies at
concretisation, and invalidate their cached plans on writes.
"""

import pytest

from repro.cache import CacheConfig
from repro.core.facets import Facet, collect_labels, facet_map, project_assignment
from repro.core.labels import Label
from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.form import (
    CharField,
    FORM,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class AggAuthor(JModel):
    name = CharField(max_length=64)


class AggBook(JModel):
    name = CharField(max_length=64)
    pages = IntegerField()
    author = ForeignKey(AggAuthor)


class AggSecret(JModel):
    """Records always span two facet rows (public + secret title)."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)
    score = IntegerField()

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


MODELS = [AggAuthor, AggBook, AggSecret]


class Viewer:
    def __init__(self, name):
        self.name = name


@pytest.fixture(params=["memory", "sqlite"])
def agg_form(request):
    if request.param == "memory":
        database = Database(MemoryBackend())
    else:
        database = Database(SqliteBackend())
    form = FORM(database)
    form.register_all(MODELS)
    with use_form(form):
        yield form
    database.close()


def _assignments(value):
    """Every label assignment a faceted value distinguishes."""
    labels = sorted(collect_labels(value))
    if not labels:
        return [dict()]
    assignments = []
    for mask in range(2 ** len(labels)):
        assignments.append(
            {label: bool(mask & (1 << i)) for i, label in enumerate(labels)}
        )
    return assignments


def _assert_faceted_equal(left, right):
    """Same value in every world (and structurally equal when both collapse)."""
    for assignment in _assignments(left) + _assignments(right):
        assert project_assignment(left, assignment) == project_assignment(
            right, assignment
        )


# -- faceted (viewer-free) results match the row-fetching path ---------------------------


def test_faceted_count_matches_legacy_structurally(agg_form):
    for index in range(4):
        AggSecret.objects.create(title=f"t{index}", owner="alice", score=index)
    queryset = AggSecret.objects.filter(owner="alice")
    legacy = facet_map(len, queryset.fetch())
    assert queryset.count() == legacy == 4


def test_faceted_count_discriminates_on_secret_facet(agg_form):
    AggSecret.objects.create(title="t0", owner="alice", score=1)
    queryset = AggSecret.objects.filter(title="t0")
    pushed = queryset.count()
    legacy = facet_map(len, queryset.fetch())
    assert isinstance(pushed, Facet)
    assert pushed == legacy  # structural: <AggSecret.1.title ? 1 : 0>
    _assert_faceted_equal(pushed, legacy)


def test_faceted_exists_and_concretisation_respect_policies(agg_form):
    AggSecret.objects.create(title="t0", owner="alice", score=1)
    exists = AggSecret.objects.filter(title="t0").exists()
    assert isinstance(exists, Facet)
    runtime = agg_form.runtime
    assert runtime.concretize(exists, Viewer("alice")) is True
    assert runtime.concretize(exists, Viewer("bob")) is False
    count = AggSecret.objects.filter(title="t0").count()
    assert runtime.concretize(count, Viewer("alice")) == 1
    assert runtime.concretize(count, Viewer("bob")) == 0


def test_faceted_sum_over_secret_matches_legacy(agg_form):
    AggSecret.objects.create(title="t0", owner="alice", score=10)
    AggSecret.objects.create(title="t1", owner="alice", score=5)
    queryset = AggSecret.objects.filter(title="t0")
    pushed = queryset.sum("score")

    def legacy_sum(items):
        values = [item.score for item in items if item.score is not None]
        return sum(values) if values else None

    legacy = facet_map(legacy_sum, queryset.fetch())
    _assert_faceted_equal(pushed, legacy)
    assert agg_form.runtime.concretize(pushed, Viewer("alice")) == 10
    assert agg_form.runtime.concretize(pushed, Viewer("bob")) is None


def test_faceted_aggregates_collapse_when_worlds_agree(agg_form):
    for index in range(3):
        AggSecret.objects.create(title=f"t{index}", owner="alice", score=index + 1)
    queryset = AggSecret.objects.filter(owner="alice")
    # score is not guarded: every world sees the same aggregate -> plain.
    assert queryset.sum("score") == 6
    assert queryset.min("score") == 1
    assert queryset.max("score") == 3
    assert queryset.avg("score") == 2.0
    assert queryset.exists() is True


# -- viewer-context results ---------------------------------------------------------------


def test_viewer_count_on_policied_model_matches_legacy(agg_form):
    for index in range(3):
        AggSecret.objects.create(title=f"t{index}", owner="alice", score=index)
    queryset = AggSecret.objects.filter(owner="alice")
    with viewer_context(Viewer("alice")):
        assert queryset.count() == len(queryset.fetch()) == 3
        assert queryset.exists() is True
    with viewer_context(Viewer("bob")):
        # bob sees the public facet of every record: still 3 records.
        assert queryset.count() == 3
    # A filter on the secret facet matches nothing for bob.
    secret = AggSecret.objects.filter(title="t0")
    with viewer_context(Viewer("bob")):
        assert secret.count() == 0
        assert secret.exists() is False
    with viewer_context(Viewer("alice")):
        assert secret.count() == 1
        assert secret.exists() is True


def test_viewer_aggregates_on_plain_model(agg_form):
    author = AggAuthor.objects.create(name="ada")
    for index, pages in enumerate((100, None, 300)):
        AggBook.objects.create(name=f"b{index}", pages=pages, author=author)
    queryset = AggBook.objects.all()
    with viewer_context(Viewer("ada")):
        assert queryset.count() == 3
        assert queryset.exists() is True
        assert queryset.sum("pages") == 400
        assert queryset.avg("pages") == 200.0
        assert queryset.min("pages") == 100
        assert queryset.max("pages") == 300
        assert queryset.aggregate("pages", "COUNT") == 2  # NULLs skipped


def test_viewer_aggregates_under_joins(agg_form):
    ada = AggAuthor.objects.create(name="ada")
    bob = AggAuthor.objects.create(name="bob")
    AggBook.objects.create(name="b0", pages=100, author=ada)
    AggBook.objects.create(name="b1", pages=300, author=ada)
    AggBook.objects.create(name="b2", pages=50, author=bob)
    queryset = AggBook.objects.filter(author__name="ada")
    with viewer_context(Viewer("x")):
        assert queryset.count() == 2
        assert queryset.sum("pages") == 400
        assert queryset.exists() is True
    # Faceted mode agrees (no policies anywhere: plain values).
    assert queryset.count() == 2
    assert queryset.sum("pages") == 400


def test_aggregates_on_empty_and_all_null(agg_form):
    queryset = AggBook.objects.all()
    assert queryset.count() == 0
    assert queryset.exists() is False
    assert queryset.sum("pages") is None
    assert queryset.min("pages") is None
    assert queryset.avg("pages") is None
    author = AggAuthor.objects.create(name="ada")
    AggBook.objects.create(name="b0", pages=None, author=author)
    assert queryset.count() == 1
    assert queryset.sum("pages") is None
    assert queryset.aggregate("pages", "COUNT") == 0
    with viewer_context(Viewer("ada")):
        assert queryset.sum("pages") is None
        assert queryset.min("pages") is None


def test_unknown_aggregate_function_rejected(agg_form):
    with pytest.raises(ValueError, match="unknown aggregate"):
        AggBook.objects.all().aggregate("pages", "MEDIAN")


def test_unknown_field_rejected(agg_form):
    # A typo must be an error, not a silent NULL (or, on SQLite, the
    # double-quoted-string misfeature turning it into a literal).
    with pytest.raises(ValueError, match="unknown field"):
        AggBook.objects.all().aggregate("typo", "SUM")


def test_sum_avg_require_numeric_field(agg_form):
    # SQL coerces text to 0 while Python concatenates or raises; the API
    # rejects the divergence.  MIN/MAX/COUNT on text stay legal.
    with pytest.raises(ValueError, match="numeric"):
        AggBook.objects.all().sum("name")
    with pytest.raises(ValueError, match="numeric"):
        AggBook.objects.all().avg("name")
    author = AggAuthor.objects.create(name="ada")
    AggBook.objects.create(name="b0", pages=1, author=author)
    AggBook.objects.create(name="b1", pages=2, author=author)
    assert AggBook.objects.all().min("name") == "b0"
    assert AggBook.objects.all().max("name") == "b1"
    assert AggBook.objects.all().aggregate("name", "COUNT") == 2
    assert AggBook.objects.all().aggregate("jid", "COUNT") == 2


# -- bounded query sets keep the record-counting fallback --------------------------------


def test_bounded_queryset_count_counts_records(agg_form):
    for index in range(5):
        AggSecret.objects.create(title=f"t{index}", owner="alice", score=index)
    with viewer_context(Viewer("alice")):
        bounded = AggSecret.objects.all().order_by("title").limited(2)
        assert bounded.count() == 2
        assert bounded.exists() is True
        assert bounded.sum("score") == 0 + 1


# -- single-statement shape ---------------------------------------------------------------


def test_count_and_exists_issue_one_grouped_statement():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend), cache_config=CacheConfig.disabled())
    form.register_all(MODELS)
    with use_form(form):
        author = AggAuthor.objects.create(name="ada")
        for index in range(3):
            AggBook.objects.create(name=f"b{index}", pages=index, author=author)
        log.clear()
        assert AggBook.objects.all().count() == 3
        with viewer_context(Viewer("ada")):
            assert AggBook.objects.all().count() == 3
            assert AggBook.objects.all().exists() is True
            assert AggBook.objects.all().sum("pages") == 3
    grouped = 'SELECT "jvars" AS "jvars"'
    assert len(log.statements) == 4
    assert all(statement.startswith(grouped) for statement in log.statements)
    assert all('GROUP BY "jvars"' in statement for statement in log.statements)
    backend.close()


def test_joined_count_groups_by_every_jvars_column():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend), cache_config=CacheConfig.disabled())
    form.register_all(MODELS)
    with use_form(form):
        ada = AggAuthor.objects.create(name="ada")
        AggBook.objects.create(name="b0", pages=10, author=ada)
        log.clear()
        assert AggBook.objects.filter(author__name="ada").count() == 1
    assert len(log.statements) == 1
    statement = log.statements[0]
    assert 'GROUP BY "AggBook"."jvars", "AggAuthor"."jvars"' in statement
    assert 'COUNT(*) AS "COUNT(*)"' in statement
    backend.close()


# -- cache interaction --------------------------------------------------------------------


def test_cached_aggregate_plan_invalidated_by_writes(agg_form):
    # agg_form has caching enabled (default CacheConfig).
    author = AggAuthor.objects.create(name="ada")
    queryset = AggBook.objects.all()
    assert queryset.count() == 0
    AggBook.objects.create(name="b0", pages=10, author=author)
    assert queryset.count() == 1  # write invalidated the cached plan
    AggBook.objects.create(name="b1", pages=20, author=author)
    assert queryset.count() == 2
    assert queryset.sum("pages") == 30
    AggBook.objects.filter(name="b1").delete()
    assert queryset.count() == 1
    assert queryset.sum("pages") == 10


def test_cached_aggregate_plan_is_served_from_cache():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend))  # caches on
    form.register_all(MODELS)
    with use_form(form):
        author = AggAuthor.objects.create(name="ada")
        AggBook.objects.create(name="b0", pages=10, author=author)
        queryset = AggBook.objects.all()
        assert queryset.count() == 1
        log.clear()
        assert queryset.count() == 1
        assert log.statements == []  # warm: no SQL at all
    backend.close()


def test_registered_policies_only_for_surfacing_labels(agg_form):
    AggSecret.objects.create(title="t0", owner="alice", score=1)
    AggSecret.objects.create(title="t1", owner="alice", score=2)
    # Full-partition count: no label survives the merge, none registered.
    assert AggSecret.objects.filter(owner="alice").count() == 2
    assert agg_form.registered_labels == set()
    # A discriminating filter surfaces (and registers) exactly its label.
    result = AggSecret.objects.filter(title="t0").count()
    assert collect_labels(result) == frozenset({Label(name="AggSecret.1.title")})
    assert agg_form.registered_labels == {"AggSecret.1.title"}
