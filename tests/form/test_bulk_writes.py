"""Set-oriented FORM writes: ``QuerySet.update()``/``delete()`` and bulk saves.

The satellite test matrix of the write-API redesign: fast-path single
statements (asserted on captured SQL), pc-guarded bulk update/delete
(complement rows survive), policy non-leakage through ``update()`` on
policied models, writes on bounded query sets, memory/SQLite backend
parity, and cache invalidation after bulk writes.
"""

import pytest

from repro.core.facets import Facet
from repro.core.labels import Label
from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class Author(JModel):
    name = CharField(max_length=64)


class Paper(JModel):
    author = ForeignKey(Author)
    title = CharField(max_length=128)
    status = CharField(max_length=32, default="submitted")
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(paper):
        return "[anonymous]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(paper, ctxt):
        return ctxt is not None and paper.author_id == ctxt.jid


def _make_form(kind):
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(database)
    form.register_all([Author, Paper])
    return form, database


@pytest.fixture(params=["memory", "sqlite"])
def paper_form(request):
    form, database = _make_form(request.param)
    with use_form(form):
        yield form
    if request.param == "sqlite":
        database.close()


def _seed(count=3, author_name="ada"):
    author = Author.objects.create(name=author_name)
    papers = [
        Paper.objects.create(author=author, title=f"t{i}", score=i)
        for i in range(count)
    ]
    return author, papers


# -- fast path --------------------------------------------------------------------------


def test_update_covers_every_facet_row_of_matching_records(paper_form):
    author, _papers = _seed()
    changed = Paper.objects.filter(author=author).update(status="accepted")
    assert changed == 6  # 3 records x 2 facet rows
    rows = paper_form.database.rows("Paper")
    assert all(row["status"] == "accepted" for row in rows)
    # The policied title facets are untouched, bit for bit.
    assert sorted(row["title"] for row in rows) == sorted(
        ["t0", "t1", "t2"] + ["[anonymous]"] * 3
    )


def test_update_matching_a_single_facet_row_updates_the_whole_record(paper_form):
    author, papers = _seed()
    # "t1" only matches the secret facet row; the write must still cover
    # the public row, or the record's status would become faceted.
    changed = Paper.objects.filter(title="t1").update(status="accepted")
    assert changed == 2
    statuses = {row["jvars"]: row["status"] for row in paper_form.database.find("Paper", jid=papers[1].jid)}
    assert set(statuses.values()) == {"accepted"}


def test_fast_path_is_one_statement_on_sqlite():
    backend = SqliteBackend()
    form = FORM(Database(backend))
    form.register_all([Author, Paper])
    with use_form(form), StatementLog(backend) as log:
        author, _papers = _seed()
        log.clear()
        Paper.objects.filter(author=author).update(status="accepted")
        assert len(log.statements) == 1
        assert log.statements[0].startswith('UPDATE "Paper" SET "status" = ?')
        assert 'jid IN (SELECT DISTINCT "jid" FROM "Paper"' in log.statements[0]
        log.clear()
        Paper.objects.filter(status="accepted").delete()
        assert log.statements == [
            'DELETE FROM "Paper" WHERE jid IN '
            '(SELECT DISTINCT "jid" FROM "Paper" WHERE status = ?)'
        ]


def test_delete_removes_whole_records(paper_form):
    _author, papers = _seed()
    deleted = Paper.objects.filter(title="t0").delete()
    assert deleted == 2
    assert paper_form.database.find("Paper", jid=papers[0].jid) == []
    assert len(paper_form.database.rows("Paper")) == 4


def test_update_unknown_field_raises(paper_form):
    _seed(1)
    with pytest.raises(ValueError):
        Paper.objects.all().update(nope=1)


def test_update_id_spelling_only_resolves_foreign_keys(paper_form):
    author, papers = _seed(1)
    other = Author.objects.create(name="bob")
    # The fk's raw column spelling works...
    Paper.objects.all().update(author_id=other.jid)
    assert {row["author_id"] for row in paper_form.database.rows("Paper")} == {other.jid}
    # ...but "<field>_id" on a non-fk field is a typo, not a resolution.
    with pytest.raises(ValueError):
        Paper.objects.all().update(score_id=0)
    assert {row["score"] for row in paper_form.database.find("Paper", jid=papers[0].jid)} == {0}


def test_empty_update_is_a_no_op(paper_form):
    _seed(1)
    assert Paper.objects.all().update() == 0


# -- bounded query sets -----------------------------------------------------------------


def test_update_on_bounded_queryset_hits_first_records_only(paper_form):
    author, papers = _seed(4)
    changed = (
        Paper.objects.filter(author=author)
        .order_by("score")
        .limited(2)
        .update(status="accepted")
    )
    assert changed == 4  # 2 records x 2 facet rows
    for paper, expected in zip(papers, ["accepted", "accepted", "submitted", "submitted"]):
        statuses = {
            row["status"] for row in paper_form.database.find("Paper", jid=paper.jid)
        }
        assert statuses == {expected}


def test_delete_on_bounded_queryset_counts_records_not_rows(paper_form):
    _author, papers = _seed(4)
    deleted = Paper.objects.all().order_by("-score").limited(1).delete()
    assert deleted == 2  # one record, both facet rows
    assert paper_form.database.find("Paper", jid=papers[3].jid) == []
    assert len(paper_form.database.rows("Paper")) == 6


# -- policied fields: the batched facet rewrite ----------------------------------------


def test_policied_update_recomputes_public_facets(paper_form):
    author, papers = _seed()
    changed = Paper.objects.filter(author=author).update(title="CAMERA READY")
    assert changed == 6
    for paper in papers:
        by_jvars = {
            row["jvars"]: row["title"]
            for row in paper_form.database.find("Paper", jid=paper.jid)
        }
        assert by_jvars[f"Paper.{paper.jid}.title=True"] == "CAMERA READY"
        # The secret value never leaks into the public facet row.
        assert by_jvars[f"Paper.{paper.jid}.title=False"] == "[anonymous]"


def test_policied_update_does_not_leak_to_other_viewers(paper_form):
    author, _papers = _seed()
    eve = Author.objects.create(name="eve")
    Paper.objects.filter(author=author).update(title="CAMERA READY")
    with viewer_context(eve):
        titles = {paper.title for paper in Paper.objects.all().fetch()}
    assert titles == {"[anonymous]"}
    with viewer_context(author):
        titles = {paper.title for paper in Paper.objects.all().fetch()}
    assert titles == {"CAMERA READY"}


def test_policied_update_is_batched_not_per_record():
    backend = SqliteBackend()
    form = FORM(Database(backend))
    form.register_all([Author, Paper])
    with use_form(form), StatementLog(backend) as log:
        author, _papers = _seed(5)
        events = []
        form.database.invalidation.subscribe(lambda table: events.append(table))
        log.clear()
        Paper.objects.filter(author=author).update(title="X")
        # One projected jid query + one row fetch; the rewrite itself is a
        # replace_rows batch (one REPLACE summary event, not per-row
        # statements).
        selects = [s for s in log.statements if s.startswith("SELECT")]
        assert len(selects) == 2
        assert selects[0].startswith('SELECT DISTINCT "jid"')
        assert [e.kind for e in log.events if e.kind == "REPLACE"] == ["REPLACE"]
        assert events == ["Paper"]  # one invalidation event for the batch


def test_batched_update_preserves_value_facets_on_other_columns(paper_form):
    """A faceted value stored on an *unassigned* column must survive a
    policied-column rewrite -- not collapse to its secret projection."""
    author, _papers = _seed(0)
    label = Label(hint="k")
    paper_form.runtime.policy_env.declare(label)
    paper_form.runtime.policy_env.restrict(
        label, lambda viewer: getattr(viewer, "name", None) == "ada"
    )
    paper = Paper(author=author, title="t", status=Facet(label, "vip", "standard"))
    paper.save()
    Paper.objects.filter(jid=paper.jid).update(title="NEW")  # policied: fallback
    rows = paper_form.database.find("Paper", jid=paper.jid)
    statuses = {
        (f"{label.name}=True" in row["jvars"], f"{label.name}=False" in row["jvars"]):
        row["status"]
        for row in rows
    }
    assert statuses.get((True, False)) == "vip"
    assert statuses.get((False, True)) == "standard", (
        "the k=False facet collapsed: its value leaked from the secret side"
    )
    titles = {row["jvars"]: row["title"] for row in rows}
    assert all(
        title == ("NEW" if f"Paper.{paper.jid}.title=True" in jvars else "[anonymous]")
        for jvars, title in titles.items()
    )


def test_batched_update_of_the_faceted_column_replaces_its_facets(paper_form):
    author, _papers = _seed(0)
    label = Label(hint="k")
    paper_form.runtime.policy_env.declare(label)
    paper_form.runtime.policy_env.restrict(label, lambda viewer: True)
    paper = Paper(author=author, title="t", status=Facet(label, "vip", "standard"))
    paper.save()
    Paper.objects.filter(jid=paper.jid).update(status="done", title="T2")
    rows = paper_form.database.find("Paper", jid=paper.jid)
    assert {row["status"] for row in rows} == {"done"}
    assert all(label.name not in row["jvars"] for row in rows)


def test_faceted_value_update_falls_back(paper_form):
    author, papers = _seed(1)
    label = Label(hint="k")
    paper_form.runtime.policy_env.declare(label)
    paper_form.runtime.policy_env.restrict(label, lambda viewer: True)
    faceted_score = Facet(label, 100, 1)
    Paper.objects.filter(author=author).update(score=faceted_score)
    rows = paper_form.database.find("Paper", jid=papers[0].jid)
    scores = {row["jvars"]: row["score"] for row in rows}
    assert any("=True" in jvars and score == 100 for jvars, score in scores.items())
    assert any("=False" in jvars and score == 1 for jvars, score in scores.items())


# -- pc-guarded writes ------------------------------------------------------------------


def _guard_label(form, allowed="alice"):
    label = Label(hint="branch")
    form.runtime.policy_env.declare(label)
    form.runtime.policy_env.restrict(
        label, lambda viewer: getattr(viewer, "name", None) == allowed
    )
    return label


def test_pc_guarded_bulk_update_keeps_complement_rows(paper_form):
    author, papers = _seed(2)
    label = _guard_label(paper_form)
    with paper_form.runtime.under_branch(label, True):
        Paper.objects.all().update(status="accepted")
    for paper in papers:
        rows = paper_form.database.find("Paper", jid=paper.jid)
        in_branch = [r for r in rows if f"{label.name}=True" in r["jvars"]]
        out_of_branch = [r for r in rows if f"{label.name}=False" in r["jvars"]]
        assert in_branch and all(r["status"] == "accepted" for r in in_branch)
        assert out_of_branch and all(r["status"] == "submitted" for r in out_of_branch)


def test_pc_guarded_bulk_delete_keeps_complement_rows(paper_form):
    _author, papers = _seed(2)
    label = _guard_label(paper_form)
    with paper_form.runtime.under_branch(label, True):
        Paper.objects.all().delete()
    for paper in papers:
        rows = paper_form.database.find("Paper", jid=paper.jid)
        assert rows, "complement rows must survive a guarded delete"
        assert all(f"{label.name}=False" in row["jvars"] for row in rows)


def test_jmodel_delete_clears_jid_and_does_not_resurrect(paper_form):
    author, _papers = _seed(1)
    paper = Paper.objects.create(author=author, title="bye")
    old_jid = paper.jid
    paper.delete()
    assert paper.jid is None
    assert paper_form.database.find("Paper", jid=old_jid) == []
    # A later save creates a *new* record instead of resurrecting the jid.
    paper.title = "back"
    paper.save()
    assert paper.jid is not None and paper.jid != old_jid


def test_jmodel_guarded_delete_keeps_jid_and_complement_rows(paper_form):
    author, _papers = _seed(1)
    paper = Paper.objects.create(author=author, title="maybe")
    label = _guard_label(paper_form)
    with paper_form.runtime.under_branch(label, True):
        paper.delete()
    assert paper.jid is not None  # still exists in the complement worlds
    rows = paper_form.database.find("Paper", jid=paper.jid)
    assert rows and all(f"{label.name}=False" in row["jvars"] for row in rows)


def test_guarded_delete_with_no_survivors_clears_jid(paper_form):
    """A record created *and* deleted inside the same branch is gone in
    every world; its stale jid must not resurrect it on a later save."""
    author, _papers = _seed(0)
    label = _guard_label(paper_form)
    with paper_form.runtime.under_branch(label, True):
        paper = Paper.objects.create(author=author, title="ephemeral")
        old_jid = paper.jid
        paper.delete()
    assert paper_form.database.find("Paper", jid=old_jid) == []
    assert paper.jid is None
    paper.save()
    assert paper.jid != old_jid


# -- bulk_update / bulk_save ------------------------------------------------------------


def test_bulk_update_batches_heterogeneous_edits(paper_form):
    author, papers = _seed(3)
    with viewer_context(author):
        fetched = Paper.objects.all().order_by("score").fetch()
    for index, paper in enumerate(fetched):
        paper.score = 100 + index
        paper.status = f"round{index}"
    events = []
    paper_form.database.invalidation.subscribe(lambda table: events.append(table))
    Paper.objects.bulk_update(fetched)
    assert events == ["Paper"]  # one batched write
    with viewer_context(author):
        refreshed = Paper.objects.all().order_by("score").fetch()
    assert [p.score for p in refreshed] == [100, 101, 102]
    assert [p.status for p in refreshed] == ["round0", "round1", "round2"]


def test_bulk_update_rejects_unsaved_instances(paper_form):
    author, _papers = _seed(1)
    with pytest.raises(ValueError):
        Paper.objects.bulk_update([Paper(author=author, title="new")])


def test_bulk_update_last_instance_wins_on_duplicate_jids(paper_form):
    author, papers = _seed(1)
    with viewer_context(author):
        first = Paper.objects.get(jid=papers[0].jid)
        second = Paper.objects.get(jid=papers[0].jid)
    first.status = "first"
    second.status = "second"
    Paper.objects.bulk_update([first, second])
    statuses = {
        row["status"] for row in paper_form.database.find("Paper", jid=papers[0].jid)
    }
    assert statuses == {"second"}


def test_bulk_save_mixes_creates_and_updates(paper_form):
    author, papers = _seed(2)
    with viewer_context(author):
        existing = Paper.objects.all().order_by("score").fetch()
    existing[0].status = "revised"
    fresh = Paper(author=author, title="new paper", score=9)
    Paper.objects.bulk_save(existing + [fresh])
    assert fresh.jid is not None
    with viewer_context(author):
        assert Paper.objects.count() == 3
        assert Paper.objects.get(jid=existing[0].jid).status == "revised"
        assert Paper.objects.get(title="new paper").score == 9


def test_bulk_save_preserves_policied_facets(paper_form):
    author, _papers = _seed(1)
    with viewer_context(author):
        paper = Paper.objects.all().fetch()[0]
    paper.score = 42
    Paper.objects.bulk_save([paper])
    by_jvars = {
        row["jvars"]: row["title"]
        for row in paper_form.database.find("Paper", jid=paper.jid)
    }
    assert by_jvars[f"Paper.{paper.jid}.title=False"] == "[anonymous]"
    assert by_jvars[f"Paper.{paper.jid}.title=True"] == "t0"


# -- parity and caching -----------------------------------------------------------------


def test_backend_parity_for_bulk_writes():
    snapshots = []
    for kind in ("memory", "sqlite"):
        form, database = _make_form(kind)
        with use_form(form):
            author, _papers = _seed(4)
            Paper.objects.filter(author=author).order_by("score").limited(2).update(
                status="accepted"
            )
            Paper.objects.filter(title="t3").delete()
            Paper.objects.filter(author=author).update(title="FINAL")
            rows = sorted(
                (row["jid"], row["jvars"], row["title"], row["status"], row["score"])
                for row in database.rows("Paper")
            )
            snapshots.append(rows)
        if kind == "sqlite":
            database.close()
    assert snapshots[0] == snapshots[1]


def test_cached_reads_refresh_after_bulk_writes(paper_form):
    author, _papers = _seed()
    with viewer_context(author):
        before = Paper.objects.filter(status="submitted").fetch()
        assert len(before) == 3
    Paper.objects.filter(author=author).update(status="accepted")
    with viewer_context(author):
        assert Paper.objects.filter(status="submitted").fetch() == []
        assert len(Paper.objects.filter(status="accepted").fetch()) == 3
    Paper.objects.filter(status="accepted").delete()
    with viewer_context(author):
        assert Paper.objects.filter(status="accepted").fetch() == []
    assert Paper.objects.count() == 0


def test_count_cache_invalidated_by_set_oriented_delete(paper_form):
    _seed()
    assert Paper.objects.count() == 3
    Paper.objects.filter(title="t0").delete()
    assert Paper.objects.count() == 2
