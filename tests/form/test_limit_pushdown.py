"""Bounded faceted queries compile to the jid-subselect pushdown.

``limited(n, offset)``, ``first()`` and ``get()`` must issue a single SQL
statement of the form ``WHERE jid IN (SELECT DISTINCT jid ... LIMIT n
OFFSET m)`` -- and still return exactly the records the old full-scan-then-
truncate path returned, on both backends.
"""

import pytest

from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.form import (
    CharField,
    FORM,
    ForeignKey,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class PushAuthor(JModel):
    name = CharField(max_length=64)


class PushBook(JModel):
    name = CharField(max_length=64)
    author = ForeignKey(PushAuthor)


class PushSecret(JModel):
    """Records always span two facet rows (public + secret)."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


MODELS = [PushAuthor, PushBook, PushSecret]


@pytest.fixture(params=["memory", "sqlite"])
def push_form(request):
    if request.param == "memory":
        database = Database(MemoryBackend())
    else:
        database = Database(SqliteBackend())
    form = FORM(database)
    form.register_all(MODELS)
    with use_form(form):
        yield form
    database.close()


class Viewer:
    def __init__(self, name):
        self.name = name


def _seed_books(count=6, per_author=3):
    authors = [PushAuthor.objects.create(name=f"author{i}") for i in range(2)]
    for index in range(count):
        PushBook.objects.create(
            name=f"book{index}", author=authors[0 if index < per_author else 1]
        )
    return authors


def _seed_secrets(count=6, owner="alice"):
    return [
        PushSecret.objects.create(title=f"title{index}", owner=owner)
        for index in range(count)
    ]


# -- the bounded query issues one jid-subselect statement --------------------------------


def test_limited_issues_single_jid_subquery_statement():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend))
    form.register_all(MODELS)
    with use_form(form):
        _seed_secrets(4)
        log.clear()
        with viewer_context(Viewer("alice")):
            PushSecret.objects.all().order_by("title").limited(2).fetch()
    selects = [s for s in log.statements if s.startswith("SELECT * ")]
    assert len(selects) == 1
    # Ordered bounds use the deterministic grouped jid-subselect form.
    assert 'jid IN (SELECT "jid" FROM "PushSecret"' in selects[0]
    assert (
        'GROUP BY "jid" ORDER BY (MIN("title") IS NULL) ASC, MIN("title") ASC, '
        '"jid" ASC LIMIT 2'
    ) in selects[0]
    backend.close()


def test_unordered_limited_issues_distinct_jid_subquery():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend))
    form.register_all(MODELS)
    with use_form(form):
        _seed_secrets(4)
        log.clear()
        with viewer_context(Viewer("alice")):
            PushSecret.objects.all().limited(2).fetch()
    selects = [s for s in log.statements if s.startswith("SELECT * ")]
    assert len(selects) == 1
    assert 'jid IN (SELECT DISTINCT "jid" FROM "PushSecret" LIMIT 2)' in selects[0]
    backend.close()


def test_first_issues_bounded_statement():
    backend = SqliteBackend()
    log = StatementLog(backend)
    form = FORM(Database(backend))
    form.register_all(MODELS)
    with use_form(form):
        _seed_secrets(4)
        log.clear()
        with viewer_context(Viewer("alice")):
            PushSecret.objects.filter(owner="alice").first()
    selects = [s for s in log.statements if s.startswith("SELECT * ")]
    assert len(selects) == 1
    assert "LIMIT 1" in selects[0]
    backend.close()


# -- limited(n, offset) with joins --------------------------------------------------------


def test_limited_with_offset_under_join(push_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = (
            PushBook.objects.filter(author__name="author0")
            .order_by("name")
            .limited(2, offset=1)
            .fetch()
        )
    assert [book.name for book in books] == ["book1", "book2"]


def test_offset_without_limit(push_form):
    _seed_secrets(4)
    with viewer_context(Viewer("alice")):
        visible = PushSecret.objects.all().order_by("title").limited(None, offset=2).fetch()
    assert [record.title for record in visible] == ["title2", "title3"]


def test_limited_join_counts_records_not_join_rows(push_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = PushBook.objects.filter(author__name="author1").limited(2).fetch()
    assert len(books) == 2


# -- first() on empty and faceted tables --------------------------------------------------


def test_first_on_empty_table(push_form):
    assert PushSecret.objects.filter(owner="nobody").first() is None
    with viewer_context(Viewer("alice")):
        assert PushSecret.objects.filter(owner="nobody").first() is None


def test_first_on_faceted_table_per_viewer(push_form):
    _seed_secrets(3)
    with viewer_context(Viewer("alice")):
        assert PushSecret.objects.all().order_by("title").first().title == "title0"
    with viewer_context(Viewer("stranger")):
        assert PushSecret.objects.all().order_by("title").first().title == "[redacted]"


def test_first_outside_viewer_context_is_faceted(push_form):
    _seed_secrets(2)
    option = PushSecret.objects.all().order_by("title").first()
    owner_view = push_form.runtime.concretize(option, Viewer("alice"))
    stranger_view = push_form.runtime.concretize(option, Viewer("bob"))
    assert owner_view.title == "title0"
    assert stranger_view.title == "[redacted]"


def test_get_uses_bounded_query(push_form):
    _seed_secrets(3)
    with viewer_context(Viewer("alice")):
        record = PushSecret.objects.get(title="title1")
    assert record is not None and record.title == "title1"


def test_get_falls_back_when_first_match_is_invisible(push_form):
    # Record A matches title="target" only via its secret facet (owner bob);
    # record B (owner alice) matches visibly.  A bounded LIMIT-1 fetch picks
    # A, pruning drops it for alice -- first()/get() must fall back to the
    # unbounded scan and return B, exactly like the pre-pushdown path.
    PushSecret.objects.create(title="target", owner="bob")
    visible = PushSecret.objects.create(title="target", owner="alice")
    with viewer_context(Viewer("alice")):
        found = PushSecret.objects.get(title="target")
        assert found is not None and found.jid == visible.jid
        assert PushSecret.objects.filter(title="target").first().jid == visible.jid


def test_get_on_invisible_only_match_returns_none(push_form):
    PushSecret.objects.create(title="target", owner="bob")
    with viewer_context(Viewer("alice")):
        assert PushSecret.objects.get(title="target") is None


def test_filter_on_none_matches_null_fields(push_form):
    PushAuthor.objects.create(name=None)
    PushAuthor.objects.create(name="ada")
    with viewer_context(Viewer("reader")):
        matches = PushAuthor.objects.filter(name=None).fetch()
        assert len(matches) == 1 and matches[0].name is None


# -- subquery + order_by interaction -----------------------------------------------------


def test_order_by_propagates_into_subquery(push_form):
    _seed_secrets(5)
    with viewer_context(Viewer("alice")):
        descending = PushSecret.objects.all().order_by("-title").limited(2).fetch()
    assert [record.title for record in descending] == ["title4", "title3"]


def test_order_by_with_join_and_bound(push_form):
    _seed_books()
    with viewer_context(Viewer("reader")):
        books = (
            PushBook.objects.filter(author__name="author0")
            .order_by("-name")
            .limited(2)
            .fetch()
        )
    assert [book.name for book in books] == ["book2", "book1"]


def test_limit_keeps_every_facet_of_kept_records(push_form):
    _seed_secrets(4)
    # A stranger must see the public facet of the bounded records -- the
    # subselect bounds jids, never facet rows, so no record loses a facet.
    with viewer_context(Viewer("stranger")):
        visible = PushSecret.objects.all().limited(2).fetch()
    assert len(visible) == 2
    assert all(record.title == "[redacted]" for record in visible)


# -- backend parity -----------------------------------------------------------------------


def _bounded_jids(database):
    form = FORM(database)
    form.register_all(MODELS)
    with use_form(form):
        _seed_secrets(8)
        _seed_books()
        with viewer_context(Viewer("alice")):
            secrets = PushSecret.objects.all().order_by("-title").limited(3, offset=2).fetch()
            books = (
                PushBook.objects.filter(author__name="author0")
                .order_by("name")
                .limited(2, offset=1)
                .fetch()
            )
        return [r.jid for r in secrets], [b.jid for b in books]


def test_memory_and_sqlite_return_identical_jid_sets():
    memory = Database(MemoryBackend())
    sqlite = Database(SqliteBackend())
    memory_jids = _bounded_jids(memory)
    sqlite_jids = _bounded_jids(sqlite)
    memory.close()
    sqlite.close()
    assert memory_jids == sqlite_jids
    assert all(jids for jids in memory_jids)
