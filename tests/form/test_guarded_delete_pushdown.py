"""Guarded-delete pushdown: pc labels statically absent from a table's jvars.

The PR 5 follow-on: a ``QuerySet.delete()`` under a single-branch path
condition, on a model with no policy groups, over a table whose rows all
carry empty jvars, compiles to **one** statement --

    UPDATE t SET jvars = '<negated branch>'
    WHERE jid IN (SELECT DISTINCT jid ...) AND jvars = ''

-- because each matching record's sole facet row survives exactly once,
confined to the complement world.  Policied models, multi-branch pcs and
pre-existing facet structure fall back to the batched rewrite unchanged.
"""

import pytest

from repro import obs
from repro.core.labels import Label
from repro.db import Database, SqliteBackend, StatementLog
from repro.form import (
    FORM,
    CharField,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)


class Person(JModel):
    name = CharField(max_length=64)


class Note(JModel):
    """No policy groups: eligible for the guarded-delete pushdown."""

    title = CharField(max_length=64)
    done = IntegerField(default=0)


class Secret(JModel):
    """Policy groups make every record multi-row: pushdown ineligible."""

    body = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_body(secret):
        return "[hidden]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(secret, ctxt):
        return getattr(ctxt, "name", None) == "alice"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _make_form(kind):
    database = Database() if kind == "memory" else Database(SqliteBackend())
    form = FORM(database)
    form.register_all([Person, Note, Secret])
    return form, database


@pytest.fixture(params=["memory", "sqlite"])
def note_form(request):
    form, database = _make_form(request.param)
    with use_form(form):
        yield form
    if request.param == "sqlite":
        database.close()


def _guard_label(form, allowed="alice"):
    label = Label(hint="branch")
    form.runtime.policy_env.declare(label)
    form.runtime.policy_env.restrict(
        label, lambda viewer: getattr(viewer, "name", None) == allowed
    )
    return label


def test_guarded_delete_takes_the_pushdown_and_keeps_complement_rows(note_form):
    notes = [Note.objects.create(title=f"n{i}", done=i % 2) for i in range(4)]
    label = _guard_label(note_form)
    with obs.tracing():
        with note_form.runtime.under_branch(label, True):
            deleted = Note.objects.filter(done=0).delete()
    assert deleted == 2
    assert obs.totals.get("plan.delete_guarded_pushdown") == 1
    assert obs.totals.get("writes.fast_path") == 1
    assert obs.totals.get("writes.fallback") == 0
    for note in notes:
        (row,) = note_form.database.find("Note", jid=note.jid)
        if note.done == 0:  # deleted in-branch, survives in the complement
            assert row["jvars"] == f"{label.name}=False"
            assert row["title"] == note.title
        else:  # unmatched records keep their unguarded row bit-for-bit
            assert row["jvars"] == ""


def test_pushdown_semantics_match_the_guarded_world_view(note_form):
    alice = Person.objects.create(name="alice")
    bob = Person.objects.create(name="bob")
    Note.objects.create(title="shared", done=0)
    label = _guard_label(note_form, allowed="alice")
    with note_form.runtime.under_branch(label, True):
        Note.objects.all().delete()
    # In-branch viewer (alice): the record is gone; others keep seeing it.
    with viewer_context(alice):
        assert Note.objects.all().fetch() == []
    with viewer_context(bob):
        assert [n.title for n in Note.objects.all().fetch()] == ["shared"]


def test_pushdown_is_one_update_statement_on_sqlite():
    backend = SqliteBackend()
    form = FORM(Database(backend))
    form.register_all([Person, Note, Secret])
    with use_form(form):
        for index in range(3):
            Note.objects.create(title=f"n{index}")
        label = _guard_label(form)
        with form.runtime.under_branch(label, True):
            expected = Note.objects.all().explain(operation="delete")
            with StatementLog(backend) as log:
                Note.objects.all().delete()
        assert expected["plan"] == "guarded-delete-pushdown"
        assert expected["path"] == "fast"
        # The write-maintained facet bit answers "does this table carry
        # facets?" without touching the database, so the delete is exactly
        # one statement: no EXISTS(jvars != '') probe SELECT precedes it.
        assert log.statements == [expected["sql"]]
        assert log.statements[0].startswith('UPDATE "Note" SET "jvars" = ?')
        assert "jvars = ?" in log.statements[0]  # the per-row empty-jvars guard


def test_policied_model_falls_back(note_form):
    secret = Secret.objects.create(body="launch codes")
    label = _guard_label(note_form)
    with obs.tracing():
        with note_form.runtime.under_branch(label, True):
            Secret.objects.all().delete()
    assert obs.totals.get("plan.delete_guarded_pushdown") == 0
    assert obs.totals.get("writes.fallback") == 1
    rows = note_form.database.find("Secret", jid=secret.jid)
    assert rows and all(f"{label.name}=False" in row["jvars"] for row in rows)


def test_multi_branch_pc_falls_back(note_form):
    note = Note.objects.create(title="n")
    first = _guard_label(note_form, allowed="alice")
    second = _guard_label(note_form, allowed="bob")
    with obs.tracing():
        with note_form.runtime.under_branch(first, True), \
                note_form.runtime.under_branch(second, True):
            Note.objects.all().delete()
    assert obs.totals.get("plan.delete_guarded_pushdown") == 0
    assert obs.totals.get("writes.fallback") == 1
    rows = note_form.database.find("Note", jid=note.jid)
    # The record survives in every world falsifying the two-branch pc.
    assert rows and all(
        f"{first.name}=False" in row["jvars"] or f"{second.name}=False" in row["jvars"]
        for row in rows
    )


def test_pre_existing_facet_structure_falls_back(note_form):
    note = Note.objects.create(title="draft")
    label = _guard_label(note_form)
    with note_form.runtime.under_branch(label, True):
        note.title = "redacted draft"
        note.save()  # a guarded save stores labelled rows: jvars non-empty
    other = _guard_label(note_form, allowed="bob")
    with obs.tracing():
        with note_form.runtime.under_branch(other, True):
            Note.objects.all().delete()
    assert obs.totals.get("plan.delete_guarded_pushdown") == 0
    assert obs.totals.get("writes.fallback") == 1


def test_explain_reports_fallback_when_shape_does_not_apply(note_form):
    label = _guard_label(note_form)
    with note_form.runtime.under_branch(label, True):
        report = Secret.objects.all().explain(operation="delete")
    assert report["path"] == "fallback"
    assert report["plan"] == "batched-facet-rewrite"
