"""End-to-end tests of the faceted ORM: storage layout, queries, policies,
guarded writes, Early Pruning and legacy-data migration."""

import pytest

from repro.core import feq
from repro.core.facets import Facet
from repro.db import Column, ColumnType, Database, SqliteBackend, TableSchema
from repro.form import (
    FORM,
    CharField,
    ForeignKey,
    IntegerField,
    JModel,
    add_metadata_columns,
    jacqueline,
    label_for,
    migrate_legacy_rows,
    use_form,
    viewer_context,
)
from repro.form.migrations import register_legacy_model


class Owner(JModel):
    name = CharField(max_length=64)


class Secret(JModel):
    owner = ForeignKey(Owner)
    body = CharField(max_length=256)
    rating = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_body(secret):
        return "[redacted]"

    @staticmethod
    @label_for("body")
    @jacqueline
    def jacqueline_restrict_body(secret, ctxt):
        return ctxt is not None and secret.owner_id == ctxt.jid


@pytest.fixture(params=["memory", "sqlite"])
def secret_form(request):
    database = Database() if request.param == "memory" else Database(SqliteBackend())
    form = FORM(database)
    form.register_all([Owner, Secret])
    with use_form(form):
        yield form
    if request.param == "sqlite":
        database.close()


def test_create_stores_two_facet_rows(secret_form):
    alice = Owner.objects.create(name="alice")
    Secret.objects.create(owner=alice, body="the launch code", rating=5)
    rows = secret_form.database.rows("Secret")
    assert len(rows) == 2
    by_jvars = {row["jvars"]: row for row in rows}
    assert by_jvars["Secret.1.body=True"]["body"] == "the launch code"
    assert by_jvars["Secret.1.body=False"]["body"] == "[redacted]"
    assert all(row["jid"] == 1 for row in rows)
    # Table 1's layout: same jid, meta-data column distinguishes the facets.


def test_unpolicied_model_stores_single_row(secret_form):
    Owner.objects.create(name="alice")
    rows = secret_form.database.rows("Owner")
    assert len(rows) == 1 and rows[0]["jvars"] == ""


def test_pruned_queries_respect_policy(secret_form):
    alice = Owner.objects.create(name="alice")
    bob = Owner.objects.create(name="bob")
    Secret.objects.create(owner=alice, body="alice's diary", rating=1)
    with viewer_context(alice):
        assert [s.body for s in Secret.objects.all()] == ["alice's diary"]
    with viewer_context(bob):
        assert [s.body for s in Secret.objects.all()] == ["[redacted]"]


def test_faceted_query_concretizes_per_viewer(secret_form):
    alice = Owner.objects.create(name="alice")
    bob = Owner.objects.create(name="bob")
    Secret.objects.create(owner=alice, body="alice's diary")
    result = Secret.objects.all().fetch()
    assert isinstance(result, Facet)
    runtime = secret_form.runtime
    assert [s.body for s in runtime.concretize(result, alice)] == ["alice's diary"]
    assert [s.body for s in runtime.concretize(result, bob)] == ["[redacted]"]


def test_filter_on_secret_value_does_not_leak(secret_form):
    alice = Owner.objects.create(name="alice")
    bob = Owner.objects.create(name="bob")
    Secret.objects.create(owner=alice, body="needle")
    with viewer_context(bob):
        assert list(Secret.objects.filter(body="needle")) == []
    with viewer_context(alice):
        assert len(list(Secret.objects.filter(body="needle"))) == 1
    # Unpruned: the match is guarded by the record's label.
    faceted = Secret.objects.filter(body="needle").fetch()
    runtime = secret_form.runtime
    assert len(runtime.concretize(faceted, alice)) == 1
    assert runtime.concretize(faceted, bob) == []


def test_foreign_key_joins_and_lookups(secret_form):
    alice = Owner.objects.create(name="alice")
    bob = Owner.objects.create(name="bob")
    secret = Secret.objects.create(owner=alice, body="x")
    with viewer_context(alice):
        found = list(Secret.objects.filter(owner__name="alice"))
        assert len(found) == 1
        assert found[0].owner.name == "alice"
        assert list(Secret.objects.filter(owner=bob)) == []
        assert Secret.objects.get(owner_id=alice.jid).jid == secret.jid


def test_get_returns_none_instead_of_raising(secret_form):
    with viewer_context(Owner.objects.create(name="alice")):
        assert Secret.objects.get(body="missing") is None
    with pytest.raises(Exception):
        Secret.objects.get_or_raise(body="missing")


def test_count_and_exists(secret_form):
    alice = Owner.objects.create(name="alice")
    Secret.objects.create(owner=alice, body="one")
    Secret.objects.create(owner=alice, body="two")
    with viewer_context(alice):
        assert Secret.objects.count() == 2
        assert Secret.objects.filter(body="one").exists()
    assert Owner.objects.count() == 2 - 1  # only alice exists


def test_order_by_sorts_with_plain_sql(secret_form):
    alice = Owner.objects.create(name="alice")
    Secret.objects.create(owner=alice, body="b", rating=2)
    Secret.objects.create(owner=alice, body="a", rating=1)
    Secret.objects.create(owner=alice, body="c", rating=3)
    with viewer_context(alice):
        bodies = [s.body for s in Secret.objects.all().order_by("rating")]
        assert bodies == ["a", "b", "c"]
        reverse = [s.body for s in Secret.objects.all().order_by("-rating")]
        assert reverse == ["c", "b", "a"]


def test_update_rewrites_facet_rows(secret_form):
    alice = Owner.objects.create(name="alice")
    secret = Secret.objects.create(owner=alice, body="old")
    secret.body = "new"
    secret.save()
    rows = secret_form.database.rows("Secret")
    assert len(rows) == 2
    assert {row["body"] for row in rows} == {"new", "[redacted]"}
    with viewer_context(alice):
        assert Secret.objects.get(jid=secret.jid).body == "new"


def test_guarded_write_under_faceted_condition(secret_form):
    """Writes inside jif on a sensitive condition stay invisible to others."""
    alice = Owner.objects.create(name="alice")
    bob = Owner.objects.create(name="bob")
    Secret.objects.create(owner=alice, body="schloss dagstuhl", rating=0)
    runtime = secret_form.runtime

    faceted = Secret.objects.all().fetch()

    def touch(entry):
        def then():
            entry.rating = 99
            entry.save()

        runtime.jif(feq(entry.body, "schloss dagstuhl"), then)

    runtime.jfor(faceted, touch)

    with viewer_context(alice):
        assert Secret.objects.get(jid=1).rating == 99
    with viewer_context(bob):
        assert Secret.objects.get(jid=1).rating == 0


def test_delete_removes_all_facet_rows(secret_form):
    alice = Owner.objects.create(name="alice")
    secret = Secret.objects.create(owner=alice, body="bye")
    secret.delete()
    assert secret_form.database.rows("Secret") == []
    with viewer_context(alice):
        assert Secret.objects.count() == 0


def test_queryset_delete_by_filter(secret_form):
    alice = Owner.objects.create(name="alice")
    Secret.objects.create(owner=alice, body="a")
    Secret.objects.create(owner=alice, body="b")
    deleted = Secret.objects.filter(body="a").delete()
    assert deleted >= 1
    with viewer_context(alice):
        assert Secret.objects.count() == 1


def test_viewer_context_none_disables_pruning(secret_form):
    alice = Owner.objects.create(name="alice")
    Secret.objects.create(owner=alice, body="s")
    with viewer_context(alice):
        with viewer_context(None):
            assert isinstance(Secret.objects.all().fetch(), Facet)


def test_unknown_filter_field_raises(secret_form):
    with pytest.raises(ValueError):
        Secret.objects.filter(nonexistent=1).fetch()
    with pytest.raises(ValueError):
        Secret.objects.filter(body__broken=1).fetch()


def test_model_equality_and_repr(secret_form):
    alice = Owner.objects.create(name="alice")
    with viewer_context(alice):
        again = Owner.objects.get(jid=alice.jid)
    assert again == alice and hash(again) == hash(alice)
    assert "Owner" in repr(alice)
    assert alice != Secret(owner=alice, body="x")


def test_unexpected_constructor_field_rejected(secret_form):
    with pytest.raises(TypeError):
        Owner(name="x", bogus=1)


def test_legacy_migration_adds_metadata(secret_form):
    database = secret_form.database
    legacy = TableSchema(
        "LegacyOwner",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("name", ColumnType.TEXT),
        ),
    )
    database.create_table(legacy)
    database.insert("LegacyOwner", name="old-alice")
    database.insert("LegacyOwner", name="old-bob")

    augmented = add_metadata_columns(legacy)
    assert augmented.has_column("jid") and augmented.has_column("jvars")

    class LegacyOwner(JModel):
        name = CharField(max_length=64)

    migrated = register_legacy_model(secret_form, LegacyOwner, "LegacyOwner")
    assert migrated == 2
    with viewer_context(Owner.objects.create(name="admin")):
        names = {owner.name for owner in LegacyOwner.objects.all()}
    assert names == {"old-alice", "old-bob"}
    # jid allocation continues after the migrated rows.
    fresh = LegacyOwner.objects.create(name="new")
    assert fresh.jid == 3
