"""Tests for schemas, column types and where-expressions."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.db.expr import (
    AndExpr,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotExpr,
    OrExpr,
    and_all,
    col,
    eq,
    filters_to_expr,
    lit,
    ne,
)
from repro.db.schema import Column, ColumnType, SchemaError, TableSchema


def make_schema(**extra):
    columns = [
        Column("id", ColumnType.INTEGER, primary_key=True),
        Column("name", ColumnType.TEXT),
        Column("age", ColumnType.INTEGER),
        Column("active", ColumnType.BOOLEAN, default=True),
        Column("joined", ColumnType.DATETIME),
    ]
    return TableSchema("Person", tuple(columns))


def test_column_type_coercion():
    assert ColumnType.INTEGER.coerce("7") == 7
    assert ColumnType.REAL.coerce(3) == 3.0
    assert ColumnType.TEXT.coerce(5) == "5"
    assert ColumnType.BOOLEAN.coerce("true") is True
    assert ColumnType.BOOLEAN.coerce(0) is False
    stamp = datetime.datetime(2026, 6, 14, 12, 0)
    assert ColumnType.DATETIME.coerce(stamp.isoformat()) == stamp
    assert ColumnType.INTEGER.coerce(None) is None
    with pytest.raises(TypeError):
        ColumnType.DATETIME.coerce(12345)


def test_schema_validation_rules():
    with pytest.raises(SchemaError):
        TableSchema("T", ())
    with pytest.raises(SchemaError):
        TableSchema("T", (Column("a", ColumnType.TEXT, primary_key=True),))
    with pytest.raises(SchemaError):
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INTEGER, primary_key=True),
                Column("id", ColumnType.TEXT),
            ),
        )
    with pytest.raises(SchemaError):
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INTEGER, primary_key=True),
                Column("other", ColumnType.INTEGER, primary_key=True),
            ),
        )


def test_schema_queries_and_row_validation():
    schema = make_schema()
    assert schema.primary_key.name == "id"
    assert schema.column_names() == ["id", "name", "age", "active", "joined"]
    assert schema.has_column("name") and not schema.has_column("missing")
    with pytest.raises(SchemaError):
        schema.column("missing")

    row = schema.validate_row({"name": "Ada", "age": "36"})
    assert row["age"] == 36
    assert row["active"] is True  # default applied
    assert row["joined"] is None
    with pytest.raises(SchemaError):
        schema.validate_row({"nonexistent": 1})


def test_non_nullable_columns_enforced():
    schema = TableSchema(
        "T",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("required", ColumnType.TEXT, nullable=False),
        ),
    )
    with pytest.raises(SchemaError):
        schema.validate_row({})
    with pytest.raises(ValueError):
        schema.column("required").coerce(None)


def test_with_extra_columns_is_idempotent():
    schema = make_schema()
    extra = (Column("jid", ColumnType.INTEGER), Column("jvars", ColumnType.TEXT))
    augmented = schema.with_extra_columns(extra)
    assert augmented.has_column("jid") and augmented.has_column("jvars")
    again = augmented.with_extra_columns(extra)
    assert len(again.columns) == len(augmented.columns)


def test_expression_evaluation():
    row = {"name": "Ada", "age": 36, "Person.city": "London"}
    assert eq("name", "Ada").evaluate(row)
    assert not eq("name", "Bob").evaluate(row)
    assert ne("age", 35).evaluate(row)
    assert Comparison("<", col("age"), lit(40)).evaluate(row)
    assert Comparison(">=", col("age"), lit(36)).evaluate(row)
    assert (eq("name", "Ada") & ne("age", 0)).evaluate(row)
    assert (eq("name", "Bob") | eq("name", "Ada")).evaluate(row)
    assert (~eq("name", "Bob")).evaluate(row)
    assert InList(col("age"), (35, 36)).evaluate(row)
    assert IsNull(col("missing_column"), negated=False).evaluate({"missing_column": None})
    # Qualified and unqualified lookups resolve either way.
    assert eq("city", "London").evaluate(row)
    assert eq("Person.age", 36).evaluate(row)


def test_expression_to_sql_parameters():
    sql, params = (eq("name", "Ada") & ne("age", 3)).to_sql()
    assert "AND" in sql and params == ["Ada", 3]
    sql, params = InList(col("age"), (1, 2, 3)).to_sql()
    assert sql.count("?") == 3
    sql, params = (~eq("name", "x")).to_sql()
    assert sql.startswith("(NOT") and params == ["x"]


def test_comparison_rejects_unknown_operator():
    with pytest.raises(ValueError):
        Comparison("~=", col("a"), lit(1))


def test_filters_to_expr_and_and_all():
    expression = filters_to_expr({"a": 1, "b": 2})
    assert expression.evaluate({"a": 1, "b": 2})
    assert not expression.evaluate({"a": 1, "b": 3})
    assert and_all([]) is None
    assert filters_to_expr({}) is None


@given(st.integers(), st.integers())
def test_comparison_property_matches_python(left, right):
    row = {"x": left}
    assert Comparison("<", col("x"), lit(right)).evaluate(row) == (left < right)
    assert eq("x", right).evaluate(row) == (left == right)
