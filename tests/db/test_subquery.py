"""The subquery/pushdown layer of ``repro.db``: rendering and evaluation.

Covers :class:`~repro.db.expr.InSubquery`, the ``distinct`` flag, the
``plan_bounded`` compiler and backend parity -- the memory engine must
return exactly what SQLite returns for every pushdown shape.
"""

import pytest

from repro.db import Database, MemoryBackend, SqliteBackend
from repro.db.expr import InSubquery, col, eq, in_subquery
from repro.db.query import Query, plan_bounded
from repro.db.schema import ColumnType
from repro.db.sqlgen import query_to_sql


def _seed_people(database: Database) -> None:
    database.define_table("Person", name=ColumnType.TEXT, team=ColumnType.TEXT)
    rows = [
        {"name": "ada", "team": "red"},
        {"name": "bob", "team": "red"},
        {"name": "cyd", "team": "blue"},
        {"name": "dee", "team": "red"},
        {"name": "eli", "team": "blue"},
    ]
    database.insert_many("Person", rows)


# -- SQL rendering ----------------------------------------------------------------------


def test_in_subquery_renders_nested_select_with_params():
    sub = (
        Query("Person")
        .filter(eq("team", "red"))
        .select("id")
        .distinct_rows()
        .ordered_by("name")
        .limited(2, offset=1)
    )
    outer = Query("Person").filter(eq("team", "red")).in_subquery("id", sub)
    statement, params = query_to_sql(outer)
    # Ordered bounded subqueries render in the deterministic grouped form
    # (DISTINCT + ORDER BY on a non-selected column would let SQLite pick
    # an arbitrary representative row per key).
    assert statement == (
        'SELECT * FROM "Person" WHERE (team = ? AND id IN '
        '(SELECT "id" FROM "Person" WHERE team = ? GROUP BY "id" '
        'ORDER BY (MIN("name") IS NULL) ASC, MIN("name") ASC, "id" ASC '
        'LIMIT 2 OFFSET 1))'
    )
    # Outer where params come first, then the subquery's, in clause order.
    assert params == ["red", "red"]


def test_unordered_bounded_subquery_renders_distinct():
    sub = Query("Person").select("id").distinct_rows().limited(3)
    statement, _params = query_to_sql(Query("Person").in_subquery("id", sub))
    assert 'id IN (SELECT DISTINCT "id" FROM "Person" LIMIT 3)' in statement


def test_offset_without_limit_renders_unbounded_limit():
    statement, _params = query_to_sql(Query("Person").limited(None, offset=3))
    assert statement.endswith("LIMIT -1 OFFSET 3")


def test_plan_bounded_qualifies_key_under_joins():
    query = Query("Book").join("Author", "author_id", "id")
    bounded = plan_bounded(query, "id", 5)
    statement, _params = query_to_sql(bounded, qualify=True)
    assert 'Book.id IN (SELECT DISTINCT "Book"."id" FROM "Book" JOIN "Author"' in statement
    assert statement.count("JOIN") == 2  # join present in outer and subquery


def test_plan_bounded_strips_stale_outer_row_limit():
    # A leftover row-level LIMIT on the outer query would truncate facet/
    # join rows of the selected records; the planner moves the bound fully
    # into the subquery.
    bounded = plan_bounded(Query("T").limited(2), "jid", 5)
    assert bounded.limit is None and bounded.offset == 0
    statement, _ = query_to_sql(bounded)
    assert statement.endswith('(SELECT DISTINCT "jid" FROM "T" LIMIT 5)')


def test_tables_read_includes_subquery_tables():
    sub = Query("Person").join("Team", "team", "id").select("id")
    outer = Query("Audit").in_subquery("person", sub)
    assert outer.tables_read() == ("Audit", "Person", "Team")


def test_order_by_same_bare_name_on_other_table_uses_grouped_form():
    # Regression: ordering the subquery by another table's identically
    # named column must NOT be mistaken for the selected key -- the plain
    # DISTINCT rendering would let SQLite pick arbitrary representative
    # rows per key under a LIMIT.
    sub = (
        Query("Paper")
        .join("ConfUser", "author", "jid")
        .select("Paper.jid")
        .distinct_rows()
        .ordered_by("ConfUser.jid")
        .limited(2)
    )
    statement, _params = query_to_sql(sub, qualify=True)
    assert 'GROUP BY "Paper"."jid"' in statement
    assert 'MIN("ConfUser"."jid") ASC' in statement


def test_unresolved_in_subquery_cannot_evaluate():
    expression = in_subquery("id", Query("Person").select("id"))
    with pytest.raises(TypeError, match="resolve_subqueries"):
        expression.evaluate({"id": 1})


# -- evaluation on both backends ---------------------------------------------------------


def test_distinct_deduplicates_rows(database):
    _seed_people(database)
    rows = database.execute(Query("Person").select("team").distinct_rows().ordered_by("team"))
    assert rows == [{"team": "blue"}, {"team": "red"}]


def test_distinct_applies_before_limit(database):
    _seed_people(database)
    rows = database.execute(
        Query("Person").select("team").distinct_rows().ordered_by("team").limited(1, offset=1)
    )
    assert rows == [{"team": "red"}]


def test_in_subquery_filters_rows(database):
    _seed_people(database)
    sub = (
        Query("Person")
        .filter(eq("team", "red"))
        .select("id")
        .distinct_rows()
        .ordered_by("name")
        .limited(2)
    )
    rows = database.execute(Query("Person").in_subquery("id", sub).ordered_by("name"))
    assert [row["name"] for row in rows] == ["ada", "bob"]


def test_in_subquery_with_offset(database):
    _seed_people(database)
    sub = (
        Query("Person")
        .filter(eq("team", "red"))
        .select("id")
        .distinct_rows()
        .ordered_by("name")
        .limited(2, offset=1)
    )
    rows = database.execute(Query("Person").in_subquery("id", sub).ordered_by("name"))
    assert [row["name"] for row in rows] == ["bob", "dee"]


def test_distinct_limit_zero_is_empty(database):
    # The memory engine's streaming distinct path must agree with SQLite:
    # LIMIT 0 returns nothing (regression: stop_after=0 once kept one row).
    _seed_people(database)
    assert database.execute(Query("Person").select("id").distinct_rows().limited(0)) == []
    bounded = plan_bounded(Query("Person"), "id", 0)
    assert database.execute(bounded) == []


def test_count_with_subquery_where(database):
    _seed_people(database)
    sub = Query("Person").filter(eq("team", "blue")).select("id").distinct_rows()
    where = InSubquery(col("id"), sub)
    assert database.count("Person", where) == 2


def test_bounded_order_by_key_varying_column_is_backend_identical():
    """Regression: ``DISTINCT jid ORDER BY title`` let SQLite sort each jid
    by an arbitrary row, keeping different records than the memory engine
    when the order column varies within a key (faceted columns, joined
    columns).  The grouped MIN/MAX form pins the choice down."""
    results = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        database.define_table("T", jid=ColumnType.INTEGER, title=ColumnType.TEXT)
        database.insert_many(
            "T",
            [
                {"jid": 1, "title": "z"},
                {"jid": 1, "title": "a"},
                {"jid": 2, "title": "b"},
                {"jid": 3, "title": "c"},
            ],
        )
        bounded = plan_bounded(Query("T").ordered_by("title"), "jid", 2)
        results[name] = sorted({row["jid"] for row in database.execute(bounded)})
        database.close()
    # MIN(title) per jid: 1->'a', 2->'b', 3->'c'; the bound keeps {1, 2}.
    assert results["memory"] == results["sqlite"] == [1, 2]


def test_bounded_order_with_null_values_is_backend_identical():
    """Regression: a record whose order column is all-NULL sorted first on
    SQLite (bare MIN aggregate) but last on the memory engine, so a bound
    kept different records; the ``(MIN(col) IS NULL)`` sort flag pins NULL
    groups to the memory convention (last ascending) on both backends."""
    results = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        database.define_table("T", jid=ColumnType.INTEGER, title=ColumnType.TEXT)
        database.insert_many(
            "T",
            [
                {"jid": 1, "title": None},
                {"jid": 2, "title": "a"},
                {"jid": 3, "title": "b"},
            ],
        )
        bounded = plan_bounded(Query("T").ordered_by("title"), "jid", 2)
        results[name] = sorted({row["jid"] for row in database.execute(bounded)})
        database.close()
    assert results["memory"] == results["sqlite"] == [2, 3]


def test_negated_in_subquery_follows_sql_null_semantics(database):
    # NULL NOT IN (...) is UNKNOWN in SQL: the NULL row matches neither the
    # IN filter nor its negation, on both backends.
    database.define_table("N", value=ColumnType.TEXT)
    database.insert_many("N", [{"value": "a"}, {"value": None}, {"value": "b"}])
    sub = Query("N").filter(eq("value", "a")).select("value").distinct_rows()
    negated = Query("N").filter(~in_subquery("value", sub))
    assert [row["value"] for row in database.execute(negated)] == ["b"]


def test_not_in_duplicate_valued_subquery(database):
    # Regression: a non-distinct subquery resolving to duplicate values
    # (e.g. one jid per facet row) must not be mistaken for NULL presence --
    # NOT IN over it still matches the true misses, on both backends.
    database.define_table("D", jid=ColumnType.INTEGER)
    database.insert_many("D", [{"jid": 1}, {"jid": 1}, {"jid": 3}])
    sub = Query("D").filter(eq("jid", 1)).select("jid")  # yields (1, 1)
    negated = Query("D").filter(~in_subquery("jid", sub))
    assert [row["jid"] for row in database.execute(negated)] == [3]


def test_update_and_delete_with_subquery_where(database):
    # Writes accept subquery filters like reads do (SQLite renders the
    # subselect inline; the memory engine materialises it first).
    _seed_people(database)
    sub = Query("Person").filter(eq("team", "red")).select("id").distinct_rows()
    updated = database.update("Person", InSubquery(col("id"), sub), team="crimson")
    assert updated == 3
    crimson = Query("Person").filter(eq("team", "crimson")).select("id").distinct_rows()
    deleted = database.delete("Person", InSubquery(col("id"), crimson))
    assert deleted == 3
    assert database.count("Person") == 2


def test_keyword_filter_on_none_means_is_null(database):
    # Django semantics for field=None: IS NULL, on both backends (a plain
    # `= NULL` comparison is UNKNOWN and would match nothing anywhere).
    database.define_table("K", value=ColumnType.TEXT)
    database.insert_many("K", [{"value": None}, {"value": "y"}])
    assert [row["id"] for row in database.find("K", value=None)] == [1]


def test_null_comparison_is_unknown(database):
    # Comparisons against NULL are UNKNOWN on both backends: neither
    # `= 'x'` nor `!= 'x'` matches a NULL column; IS NULL does.
    from repro.db.expr import IsNull, ne

    database.define_table("C", value=ColumnType.TEXT)
    database.insert_many("C", [{"value": None}, {"value": "y"}])
    assert [r["value"] for r in database.execute(Query("C").filter(ne("value", "x")))] == ["y"]
    assert database.count("C", IsNull(col("value"))) == 1


def test_not_in_list_with_null_matches_nothing(database):
    # x NOT IN ('a', NULL) is never TRUE in SQL (the NULL comparison makes
    # the IN UNKNOWN); memory must agree instead of returning the misses.
    database.define_table("M", value=ColumnType.TEXT)
    database.insert_many("M", [{"value": "a"}, {"value": "b"}])
    from repro.db.expr import InList, NotExpr

    query = Query("M").filter(NotExpr(InList(col("value"), ("a", None))))
    assert database.execute(query) == []


def test_backend_parity_on_bounded_joined_query():
    """Memory and SQLite return identical id sets for every pushdown shape."""

    def build(database: Database):
        database.define_table("Author", name=ColumnType.TEXT)
        database.define_table(
            "Book", title=ColumnType.TEXT, author_id=ColumnType.INTEGER
        )
        for author in ("ada", "bob"):
            database.insert("Author", name=author)
        for index in range(6):
            database.insert(
                "Book", title=f"book{index}", author_id=1 if index < 4 else 2
            )

    results = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        build(database)
        query = (
            Query("Book")
            .join("Author", "author_id", "id")
            .filter(eq("Author.name", "ada"))
            .ordered_by("Book.title", ascending=False)
        )
        bounded = plan_bounded(query, "id", 2, offset=1)
        rows = database.execute(bounded)
        results[name] = [row["Book.id"] for row in rows]
        database.close()
    assert results["memory"] == results["sqlite"] == [3, 2]
