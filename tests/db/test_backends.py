"""Backend contract tests, run against both the memory engine and SQLite."""

import datetime

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    MemoryBackend,
    Query,
    SqliteBackend,
    TableSchema,
    query_to_sql,
    schema_to_sql,
)
from repro.db.expr import eq, ne
from repro.db.schema import SchemaError
from repro.db.sqlgen import django_style_sql, jacqueline_style_sql


EVENT_SCHEMA = TableSchema(
    "Event",
    (
        Column("id", ColumnType.INTEGER, primary_key=True),
        Column("name", ColumnType.TEXT),
        Column("location", ColumnType.TEXT, indexed=True),
        Column("attendees", ColumnType.INTEGER),
        Column("private", ColumnType.BOOLEAN, default=False),
        Column("starts", ColumnType.DATETIME),
        Column("jid", ColumnType.INTEGER, indexed=True),
        Column("jvars", ColumnType.TEXT, default=""),
    ),
)

GUEST_SCHEMA = TableSchema(
    "Guest",
    (
        Column("id", ColumnType.INTEGER, primary_key=True),
        Column("event_id", ColumnType.INTEGER, indexed=True),
        Column("name", ColumnType.TEXT),
        Column("jid", ColumnType.INTEGER),
        Column("jvars", ColumnType.TEXT, default=""),
    ),
)


def seeded(db: Database) -> Database:
    db.create_table(EVENT_SCHEMA)
    db.create_table(GUEST_SCHEMA)
    db.insert(
        "Event",
        name="Party",
        location="Dagstuhl",
        attendees=20,
        private=True,
        starts=datetime.datetime(2026, 6, 16, 19, 0),
        jid=1,
        jvars="k=True",
    )
    db.insert("Event", name="Private event", location="Undisclosed", attendees=20, jid=1, jvars="k=False")
    db.insert("Event", name="Seminar", location="Aula", attendees=5, jid=2, jvars="")
    db.insert("Guest", event_id=1, name="alice", jid=1)
    db.insert("Guest", event_id=2, name="bob", jid=2)
    return db


def test_insert_select_roundtrip(database):
    db = seeded(database)
    rows = db.find("Event", location="Dagstuhl")
    assert len(rows) == 1
    row = rows[0]
    assert row["name"] == "Party"
    assert row["private"] is True
    assert row["starts"] == datetime.datetime(2026, 6, 16, 19, 0)
    assert db.get("Event", location="nowhere") is None


def test_primary_keys_autoincrement(database):
    db = seeded(database)
    ids = [row["id"] for row in db.rows("Event")]
    assert sorted(ids) == [1, 2, 3]


def test_update_and_delete(database):
    db = seeded(database)
    assert db.update("Event", eq("location", "Aula"), attendees=50) == 1
    assert db.get("Event", location="Aula")["attendees"] == 50
    assert db.delete("Event", eq("jid", 1)) == 2
    assert db.count("Event") == 1
    assert db.delete("Event") == 1
    assert db.count("Event") == 0


def test_order_by_and_limit(database):
    db = seeded(database)
    ordered = db.rows("Event", order_by=["attendees"], limit=2)
    assert [row["name"] for row in ordered][0] == "Seminar"
    descending = db.execute(db.query("Event").ordered_by("attendees", ascending=False))
    assert descending[0]["attendees"] == 20


def test_join_produces_qualified_columns(database):
    db = seeded(database)
    query = (
        db.query("Guest")
        .join("Event", "event_id", "jid")
        .filter(eq("Event.location", "Dagstuhl"))
    )
    rows = db.execute(query)
    # Only the secret facet row stores the real location, so exactly one of
    # jid=1's facet rows survives the filter -- the property the FORM's
    # unmarshalling relies on to guard query results (Section 3.1.1).
    assert len(rows) == 1
    row = rows[0]
    assert "Guest.name" in row and "Event.jvars" in row
    assert row["Event.jvars"] == "k=True"
    assert row["Event.name"] == "Party"
    assert row["Guest.name"] == "alice"


def test_aggregates(database):
    db = seeded(database)
    assert db.count("Event") == 3
    total = db.aggregate(db.query("Event").with_aggregate("SUM", "attendees"))
    assert total == 45
    maximum = db.aggregate(db.query("Event").with_aggregate("MAX", "attendees"))
    assert maximum == 20
    average = db.aggregate(db.query("Event").with_aggregate("AVG", "attendees"))
    assert average == pytest.approx(15)
    grouped = db.aggregate(
        db.query("Event").with_aggregate("COUNT").grouped_by("jid")
    )
    assert grouped[(1,)] == 2 and grouped[(2,)] == 1


def test_unknown_table_raises(database):
    with pytest.raises(Exception):
        database.rows("Nope")


def test_duplicate_create_table_is_idempotent(database):
    database.create_table(EVENT_SCHEMA)
    database.create_table(EVENT_SCHEMA)
    assert database.has_table("Event")


def test_clear_keeps_schema(database):
    db = seeded(database)
    db.clear()
    assert db.count("Event") == 0
    db.insert("Event", name="again", location="x", attendees=1, jid=5, jvars="")
    assert db.count("Event") == 1


def test_define_table_shorthand(database):
    schema = database.define_table("Quick", title=ColumnType.TEXT, rank=ColumnType.INTEGER)
    assert schema.primary_key.name == "id"
    database.insert("Quick", title="a", rank=3)
    assert database.get("Quick", rank=3)["title"] == "a"


def test_memory_backend_duplicate_pk_rejected():
    db = Database(MemoryBackend())
    db.create_table(EVENT_SCHEMA)
    db.insert_row("Event", {"id": 7, "name": "x", "location": "y", "attendees": 0, "jid": 1, "jvars": ""})
    with pytest.raises(SchemaError):
        db.insert_row("Event", {"id": 7, "name": "z", "location": "y", "attendees": 0, "jid": 2, "jvars": ""})


def test_schema_to_sql_mentions_columns():
    sql = schema_to_sql(EVENT_SCHEMA)
    assert '"Event"' in sql and '"jvars" TEXT' in sql and "PRIMARY KEY" in sql


def test_query_to_sql_round_trips_through_sqlite():
    query = (
        Query(table="Event")
        .filter(eq("location", "Dagstuhl"))
        .ordered_by("attendees", ascending=False)
        .limited(5)
    )
    sql, params = query_to_sql(query)
    assert sql.startswith("SELECT *") and "ORDER BY" in sql and "LIMIT 5" in sql
    assert params == ["Dagstuhl"]


# -- write-through invalidation events (both backends via the `database` fixture) --


def test_insert_update_delete_publish_events(database):
    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    db.insert("Event", name="x", location="y", attendees=1, jid=9, jvars="")
    assert events == ["Event"]
    db.update("Event", eq("jid", 9), attendees=2)
    assert events == ["Event", "Event"]
    db.delete("Event", eq("jid", 9))
    assert events == ["Event", "Event", "Event"]


def test_no_op_writes_publish_nothing(database):
    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    assert db.update("Event", eq("jid", 999), attendees=1) == 0
    assert db.delete("Event", eq("jid", 999)) == 0
    assert events == []


def test_write_generation_counters(database):
    db = seeded(database)
    before = db.invalidation.write_generation("Event")
    db.insert("Event", name="x", location="y", attendees=1, jid=9, jvars="")
    assert db.invalidation.write_generation("Event") == before + 1
    assert db.invalidation.write_generation("Guest") >= 0


def test_clear_publishes_wildcard(database):
    from repro.cache import ALL_TABLES

    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    db.clear()
    assert events == [ALL_TABLES]


def test_schema_changes_bump_schema_generation(database):
    db = seeded(database)
    generation = db.invalidation.schema_generation
    db.define_table("Extra", note=ColumnType.TEXT)
    assert db.invalidation.schema_generation == generation + 1
    events = []
    db.invalidation.subscribe(events.append)
    db.drop_table("Extra")
    assert db.invalidation.schema_generation == generation + 2
    assert "Extra" in events  # dropped data invalidates like a write


def test_insert_many_single_event_and_rows_present(database):
    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    rows = [
        {"name": f"bulk{i}", "location": "Hall", "attendees": i, "jid": 100 + i, "jvars": ""}
        for i in range(10)
    ]
    pks = db.insert_many("Event", rows)
    assert len(pks) == 10 and len(set(pks)) == 10
    assert events == ["Event"]
    stored = db.find("Event", location="Hall")
    assert sorted(row["name"] for row in stored) == sorted(f"bulk{i}" for i in range(10))
    # Returned primary keys address the inserted rows.
    by_pk = db.get("Event", id=pks[0])
    assert by_pk is not None and by_pk["name"] == "bulk0"


def test_insert_many_with_explicit_ids(database):
    db = seeded(database)
    rows = [
        {"id": 50, "name": "fixed", "location": "L", "attendees": 0, "jid": 50, "jvars": ""},
        {"name": "auto", "location": "L", "attendees": 0, "jid": 51, "jvars": ""},
    ]
    pks = db.insert_many("Event", rows)
    assert pks[0] == 50
    assert db.get("Event", id=50)["name"] == "fixed"
    assert db.get("Event", id=pks[1])["name"] == "auto"


def test_insert_many_partial_failure_never_leaves_silent_rows(database):
    """A failing batch must not leave rows invisible to the invalidation
    bus: either nothing is committed (SQLite rolls the transaction back) or
    the committed prefix is announced (memory engine)."""
    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    rows = [
        {"id": 200, "name": "ok", "location": "L", "attendees": 0, "jid": 70, "jvars": ""},
        {"id": 200, "name": "dup", "location": "L", "attendees": 0, "jid": 71, "jvars": ""},
    ]
    with pytest.raises(Exception):
        db.insert_many("Event", rows)  # duplicate primary key fails mid-batch
    inserted = db.find("Event", jid=70)
    if inserted:
        assert events == ["Event"]  # committed prefix was announced
    else:
        assert events == []  # rolled back: nothing to announce


def test_insert_many_pks_correct_after_deleting_max_id_row(database):
    db = seeded(database)
    max_id = max(row["id"] for row in db.rows("Event"))
    db.delete("Event", eq("id", max_id))
    rows = [
        {"name": f"after{i}", "location": "L", "attendees": 0, "jid": 80 + i, "jvars": ""}
        for i in range(2)
    ]
    pks = db.insert_many("Event", rows)
    for pk, expected in zip(pks, ("after0", "after1")):
        stored = db.get("Event", id=pk)
        assert stored is not None and stored["name"] == expected


def test_insert_many_empty_is_a_no_op(database):
    db = seeded(database)
    events = []
    db.invalidation.subscribe(events.append)
    assert db.insert_many("Event", []) == []
    assert events == []


def test_table2_sql_translation_shapes():
    """Table 2: the Jacqueline translation adds jid/jvars and joins on jid."""
    kwargs = dict(
        base_table="EventGuest",
        columns=["event", "guest"],
        join_table="UserProfile",
        fk_column="guest_id",
        where_column="name",
        where_value="Alice",
    )
    django_sql = django_style_sql(**kwargs)
    jacqueline_sql = jacqueline_style_sql(**kwargs)
    assert "UserProfile.id" in django_sql and "jvars" not in django_sql
    assert "UserProfile.jid" in jacqueline_sql
    assert "EventGuest.jid" in jacqueline_sql
    assert "EventGuest.jvars" in jacqueline_sql
    assert "UserProfile.jvars" in jacqueline_sql
