"""Property tests: ordered-index probes agree with the scan and with SQLite.

Randomized rows (NULLs, heavy duplicates, case-varied text) are pushed
through range / BETWEEN / prefix-LIKE / ORDER BY queries on four engines:

* the memory engine with indexes on (probes + the cost model),
* the memory engine forced to scan (``use_indexes=False``),
* SQLite (with its own ``CREATE INDEX`` DDL),
* a naive Python oracle -- ``Expression.evaluate`` over the raw row dicts
  plus :func:`repro.db.query.apply_order` -- sharing no access-path code.

Ordered results compare as (order-key sequence, sorted row multiset) so
the backends' freedom in tie order never reads as a failure; bounded
(LIMIT/OFFSET) comparisons always append an ``id`` tiebreak, making the
kept subset fully deterministic.  SQL three-valued logic is part of the
contract: a NULL range bound makes the predicate UNKNOWN everywhere, and
NULL-valued rows never match a range but still order (last ascending,
first descending).
"""

import random

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    IndexSpec,
    MemoryBackend,
    SqliteBackend,
    TableSchema,
    between,
    gt,
    gte,
    like,
    lt,
    lte,
)
from repro.db.expr import eq
from repro.db.query import Order, apply_order
from repro.db.table import OrderedIndex


def _schema():
    return TableSchema(
        "T",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("score", ColumnType.INTEGER, ordered=True),
            Column("rank", ColumnType.INTEGER, ordered=True),
            Column("name", ColumnType.TEXT, ordered=True),
            Column("tag", ColumnType.TEXT, indexed=True),
        ),
        indexes=(IndexSpec(("score", "id")),),
    )


NAMES = ["alpha", "Alpha", "alps", "beta", "Beta", "bet", "gamma", "ga_ma", None]


def _random_rows(rng, count):
    return [
        {
            "score": rng.choice(list(range(10)) + [None]),
            "rank": rng.choice([0, 1, 2, None]),
            "name": rng.choice(NAMES),
            "tag": rng.choice(["x", "y", "z", None]),
        }
        for _ in range(count)
    ]


PREDICATES = [
    ("between", lambda: between("score", 2, 7)),
    ("between-empty", lambda: between("score", 7, 2)),
    ("gt", lambda: gt("score", 4)),
    ("gte", lambda: gte("rank", 1)),
    ("lt", lambda: lt("name", "beta")),
    ("lte", lambda: lte("score", 3)),
    ("prefix-ci", lambda: like("name", "al%")),
    ("prefix-cs", lambda: like("name", "al%", case_sensitive=True)),
    ("underscore", lambda: like("name", "b_t%")),
    ("hash-eq", lambda: eq("tag", "x")),
    ("null-bound", lambda: between("score", None, 5)),
    ("none", lambda: None),
]

ORDERS = [
    (),
    (("score", True),),
    (("score", False),),
    (("name", True),),
    (("rank", False), ("name", True)),
]


def _orderable(value):
    return (value is None, type(value).__name__, 0 if value is None else value)


def _canonical(rows, order):
    frozen = [
        tuple(row[column] for column in ("id", "score", "rank", "name", "tag"))
        for row in rows
    ]
    multiset = sorted(frozen, key=lambda row: tuple(_orderable(v) for v in row))
    if order:
        keys = tuple(tuple(row[column] for column, _ in order) for row in rows)
        return (keys, multiset)
    return multiset


def _oracle(rows, where, order, limit=None, offset=0):
    matched = [dict(row) for row in rows if where is None or where.evaluate(row)]
    ordered = apply_order(matched, tuple(Order(c, asc) for c, asc in order))
    if limit is not None:
        ordered = ordered[offset:offset + limit]
    return ordered


def _fetch(database, where, order, limit=None, offset=0):
    query = database.query("T")
    if where is not None:
        query = query.filter(where)
    for column, ascending in order:
        query = query.ordered_by(column, ascending=ascending)
    if limit is not None:
        query = query.limited(limit, offset=offset)
    return database.execute(query)


@pytest.fixture()
def engines():
    built = {
        "indexed": Database(MemoryBackend()),
        "scan": Database(MemoryBackend(use_indexes=False)),
        "sqlite": Database(SqliteBackend()),
    }
    for database in built.values():
        database.create_table(_schema())
    yield built
    for database in built.values():
        database.close()


@pytest.mark.parametrize("seed", range(5))
def test_randomized_rows_agree_across_engines_and_oracle(engines, seed):
    rng = random.Random(20160613 + seed)
    rows = _random_rows(rng, 120)
    for database in engines.values():
        database.insert_many("T", rows)
    oracle_rows = [dict(row, id=index + 1) for index, row in enumerate(rows)]

    for label, build in PREDICATES:
        for order in ORDERS:
            results = {
                name: _canonical(_fetch(database, build(), order), order)
                for name, database in engines.items()
            }
            results["oracle"] = _canonical(_oracle(oracle_rows, build(), order), order)
            assert (
                results["indexed"] == results["scan"]
                == results["sqlite"] == results["oracle"]
            ), f"divergence on {label!r} order={order!r} seed={seed}"

            # Bounded variant: append the id tiebreak so the kept subset
            # is a total order on every engine, then compare row-for-row.
            bounded = order + (("id", True),)
            limited = {
                name: _canonical(
                    _fetch(database, build(), bounded, limit=7, offset=2), bounded
                )
                for name, database in engines.items()
            }
            limited["oracle"] = _canonical(
                _oracle(oracle_rows, build(), bounded, limit=7, offset=2), bounded
            )
            assert (
                limited["indexed"] == limited["scan"]
                == limited["sqlite"] == limited["oracle"]
            ), f"bounded divergence on {label!r} order={order!r} seed={seed}"


def test_write_churn_keeps_indexes_consistent(engines):
    """Updates and deletes must maintain the ordered entries exactly."""
    rng = random.Random(7)
    rows = _random_rows(rng, 80)
    for database in engines.values():
        database.insert_many("T", rows)
    for database in engines.values():
        database.update("T", between("score", 3, 6), score=1)
        database.delete("T", like("name", "al%"))
        database.update("T", gt("rank", 1), rank=None)
    order = (("score", True), ("id", True))
    results = {
        name: _canonical(_fetch(database, None, order), order)
        for name, database in engines.items()
    }
    assert results["indexed"] == results["scan"] == results["sqlite"]


def test_null_range_bound_is_unknown_everywhere(engines):
    for database in engines.values():
        database.insert_many("T", [{"score": s} for s in (None, 1, 5, 9)])
    for where in (between("score", None, 5), gt("score", None), lte("score", None)):
        for name, database in engines.items():
            assert _fetch(database, where, ()) == [], name


def test_memory_tie_order_matches_scan_without_tiebreak():
    """Within the memory engine, index-served descending ORDER BY with
    duplicate keys must keep the stable sort's tie order (ascending pk),
    even under LIMIT -- exact row-for-row, no canonicalization."""
    indexed = Database(MemoryBackend())
    scan = Database(MemoryBackend(use_indexes=False))
    for database in (indexed, scan):
        database.create_table(_schema())
        database.insert_many(
            "T", [{"rank": rank} for rank in (1, 2, 1, None, 2, 1, None, 2)]
        )
    for ascending in (True, False):
        for limit in (None, 4):
            left = _fetch(indexed, None, (("rank", ascending),), limit=limit)
            right = _fetch(scan, None, (("rank", ascending),), limit=limit)
            assert [row["id"] for row in left] == [row["id"] for row in right]
    indexed.close()
    scan.close()


def test_nulls_last_ascending_first_descending_through_the_index():
    database = Database(MemoryBackend())
    database.create_table(_schema())
    database.insert_many("T", [{"score": s} for s in (3, None, 1, None, 2)])
    ascending = [row["score"] for row in _fetch(database, None, (("score", True),))]
    descending = [row["score"] for row in _fetch(database, None, (("score", False),))]
    assert ascending == [1, 2, 3, None, None]
    assert descending == [None, None, 3, 2, 1]
    database.close()


# -- the structure itself --------------------------------------------------------------


def test_ordered_index_add_remove_and_cardinality():
    index = OrderedIndex("idx", ("score",))
    rows = [({"score": value}, pk) for pk, value in enumerate([5, 2, 5, None, 8], 1)]
    for row, pk in rows:
        index.add(row, pk)
    assert len(index) == 5
    assert index.cardinality() == 4  # 5, 2, None, 8
    assert index.scan_pks() == [2, 1, 3, 5, 4]  # 2, 5, 5, 8, then NULL last
    index.remove({"score": 5}, 1)
    assert index.scan_pks() == [2, 3, 5, 4]
    assert index.cardinality() == 4
    index.remove({"score": 5}, 3)
    assert index.cardinality() == 3


def test_ordered_index_range_probe_bounds():
    index = OrderedIndex("idx", ("score",))
    for pk, value in enumerate([1, 3, 3, 7, None], 1):
        index.add({"score": value}, pk)
    assert index.range_pks((7, True), (3, True)) == []  # inverted range
    assert index.range_pks((3, True), (7, True)) == [2, 3, 4]
    assert index.range_pks((3, False), (7, True)) == [4]
    assert index.range_pks((3, True), (7, False)) == [2, 3]
    # Unbounded ends never pick up the NULL tail.
    assert index.range_pks(None, None) == [1, 2, 3, 4]
    assert index.range_pks((3, True), None) == [2, 3, 4]
    # Descending keeps ascending pk inside equal-value groups.
    assert index.range_pks((1, True), (7, True), descending=True) == [4, 2, 3, 1]
