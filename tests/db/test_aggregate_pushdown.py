"""The aggregate-pushdown layer of ``repro.db``: rendering and evaluation.

Covers :class:`~repro.db.query.Aggregate` selections (COUNT DISTINCT,
EXISTS, grouped multi-aggregates), the ``plan_*`` compilers, SQL NULL
semantics, the memory backend's index-narrowed scans, and backend parity --
the memory engine must return exactly what SQLite returns for every
aggregate shape.
"""

import datetime

import pytest

from repro.db import (
    Aggregate,
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.db.expr import InList, col, eq, exists_subquery, in_subquery
from repro.db.query import (
    Query,
    plan_aggregate,
    plan_count_distinct,
    plan_exists,
    plan_scalar_aggregate,
)
from repro.db.schema import ColumnType
from repro.db.sqlgen import query_to_sql
from repro.db.table import Table


def _seed_scores(database: Database) -> None:
    database.define_table(
        "Score", jid=ColumnType.INTEGER, jvars=ColumnType.TEXT, points=ColumnType.INTEGER
    )
    database.insert_many(
        "Score",
        [
            {"jid": 1, "jvars": "k=True", "points": 10},
            {"jid": 1, "jvars": "k=False", "points": None},
            {"jid": 2, "jvars": "", "points": 7},
            {"jid": 3, "jvars": "", "points": None},
        ],
    )


# -- validation ---------------------------------------------------------------------------


def test_aggregate_validation():
    with pytest.raises(ValueError, match="DISTINCT"):
        Aggregate("COUNT", distinct=True)
    with pytest.raises(ValueError, match="EXISTS"):
        Aggregate("EXISTS", "points")
    with pytest.raises(ValueError, match="unknown aggregate"):
        Aggregate("MEDIAN", "points")


def test_exists_with_group_by_rejected_identically(database):
    # EXISTS has no grouped form in SQL; both backends must reject it the
    # same way instead of one answering and the other crashing mid-SQL.
    _seed_scores(database)
    query = Query("Score").with_aggregate("EXISTS").grouped_by("jid")
    with pytest.raises(ValueError, match="GROUP BY"):
        database.aggregate(query)


# -- SQL rendering ------------------------------------------------------------------------


def test_count_distinct_renders_one_statement():
    statement, params = query_to_sql(plan_count_distinct(Query("Score"), "jid"))
    assert statement == 'SELECT COUNT(DISTINCT "jid") FROM "Score"'
    assert params == []


def test_exists_renders_wrapped_subselect_with_params():
    query = plan_exists(Query("Score").filter(eq("points", 7)))
    statement, params = query_to_sql(query)
    assert statement == 'SELECT EXISTS(SELECT 1 FROM "Score" WHERE points = ?)'
    assert params == [7]


def test_plan_scalar_aggregate_strips_row_shaping():
    query = (
        Query("Score")
        .select("jid")
        .distinct_rows()
        .ordered_by("points")
        .limited(3, offset=1)
    )
    planned = plan_scalar_aggregate(query, "MAX", "points")
    statement, _params = query_to_sql(planned)
    assert statement == 'SELECT MAX("points") FROM "Score"'


def test_plan_scalar_aggregate_qualifies_column_under_joins():
    query = Query("Book").join("Author", "author_id", "id")
    planned = plan_scalar_aggregate(query, "SUM", "pages")
    assert planned.aggregate.column == "Book.pages"


def test_grouped_aggregates_render_aliases():
    query = plan_aggregate(
        Query("Score"), ["jvars"], [Aggregate("COUNT"), Aggregate("SUM", "points")]
    )
    statement, _params = query_to_sql(query)
    assert statement == (
        'SELECT "jvars" AS "jvars", COUNT(*) AS "COUNT(*)", '
        'SUM("points") AS "SUM(points)" FROM "Score" GROUP BY "jvars"'
    )


def test_plan_aggregate_qualifies_group_columns_under_joins():
    query = Query("Paper").join("ConfUser", "author", "jid")
    planned = plan_aggregate(query, ["jvars", "ConfUser.jvars"], [Aggregate("COUNT")])
    assert planned.group_by == ("Paper.jvars", "ConfUser.jvars")


def test_exists_subquery_renders_in_where():
    sub = Query("Review").filter(eq("score", 5)).select("paper")
    statement, params = query_to_sql(Query("Paper").filter(exists_subquery(sub)))
    assert statement == (
        'SELECT * FROM "Paper" WHERE EXISTS (SELECT "paper" FROM "Review" '
        "WHERE score = ?)"
    )
    assert params == [5]


def test_tables_read_includes_exists_subquery_tables():
    sub = Query("Review").select("paper")
    query = Query("Paper").filter(exists_subquery(sub))
    assert query.tables_read() == ("Paper", "Review")


def test_unresolved_exists_subquery_cannot_evaluate():
    expression = exists_subquery(Query("Review").select("paper"))
    with pytest.raises(TypeError, match="resolve_subqueries"):
        expression.evaluate({})


# -- evaluation on both backends ----------------------------------------------------------


def test_count_distinct_skips_duplicate_and_null_keys(database):
    database.define_table("D", jid=ColumnType.INTEGER)
    database.insert_many("D", [{"jid": 1}, {"jid": 1}, {"jid": 2}, {"jid": None}])
    assert database.count_distinct("D", "jid") == 2


def test_exists_honours_limit_and_offset(database):
    # sqlgen keeps LIMIT/OFFSET inside SELECT EXISTS(...), so the memory
    # engine's early exit must honour them too: the window is non-empty iff
    # more than ``offset`` rows match and the limit admits at least one.
    _seed_scores(database)
    base = Query("Score")
    assert database.aggregate(base.with_aggregate("EXISTS")) is True
    assert database.aggregate(base.limited(0).with_aggregate("EXISTS")) is False
    assert database.aggregate(base.limited(None, offset=3).with_aggregate("EXISTS")) is True
    assert database.aggregate(base.limited(None, offset=4).with_aggregate("EXISTS")) is False
    assert database.aggregate(base.limited(2, offset=5).with_aggregate("EXISTS")) is False


def test_exists_true_false_and_empty_table(database):
    _seed_scores(database)
    assert database.exists("Score", eq("points", 7)) is True
    assert database.exists("Score", eq("points", 99)) is False
    database.define_table("Empty", value=ColumnType.TEXT)
    assert database.exists("Empty") is False


def test_exists_subquery_filters_rows(database):
    database.define_table("Paper", title=ColumnType.TEXT)
    database.define_table("Review", paper=ColumnType.INTEGER, score=ColumnType.INTEGER)
    database.insert_many("Paper", [{"title": "a"}, {"title": "b"}])
    database.insert("Review", paper=1, score=5)
    sub = Query("Review").filter(eq("score", 5)).select("paper")
    rows = database.execute(Query("Paper").filter(exists_subquery(sub)))
    # EXISTS is a whole-query (non-correlated) probe: it holds for every
    # Paper row because *some* review scored 5, exactly as in SQL.
    assert [row["title"] for row in rows] == ["a", "b"]
    empty = Query("Review").filter(eq("score", 1)).select("paper")
    assert database.execute(Query("Paper").filter(exists_subquery(empty))) == []
    negated = Query("Paper").filter(~exists_subquery(empty))
    assert len(database.execute(negated)) == 2


def test_scalar_aggregates_follow_sql_null_rules(database):
    _seed_scores(database)
    q = Query("Score")
    assert database.aggregate(q.with_aggregate("COUNT")) == 4
    assert database.aggregate(q.with_aggregate("COUNT", "points")) == 2
    assert database.aggregate(q.with_aggregate("SUM", "points")) == 17
    assert database.aggregate(q.with_aggregate("AVG", "points")) == 8.5
    assert database.aggregate(q.with_aggregate("MIN", "points")) == 7
    assert database.aggregate(q.with_aggregate("MAX", "points")) == 10
    all_null = Query("Score").filter(eq("jid", 3))
    assert database.aggregate(all_null.with_aggregate("SUM", "points")) is None
    assert database.aggregate(all_null.with_aggregate("AVG", "points")) is None
    assert database.aggregate(all_null.with_aggregate("MIN", "points")) is None
    assert database.aggregate(all_null.with_aggregate("COUNT", "points")) == 0


def test_aggregates_on_empty_table(database):
    database.define_table("Empty", value=ColumnType.INTEGER)
    q = Query("Empty")
    assert database.aggregate(q.with_aggregate("COUNT")) == 0
    assert database.aggregate(q.with_aggregate("SUM", "value")) is None
    assert database.aggregate(q.with_aggregate("MIN", "value")) is None
    # Grouped selections over an empty table produce no groups (SQL).
    grouped = plan_aggregate(q, ["value"], [Aggregate("COUNT")])
    assert database.execute(grouped) == []
    # ...but an ungrouped aggregate selection still yields one row.
    ungrouped = q.select_aggregates(Aggregate("COUNT"), Aggregate("SUM", "value"))
    assert database.execute(ungrouped) == [{"COUNT(*)": 0, "SUM(value)": None}]


def test_grouped_aggregate_rows_are_backend_identical():
    results = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        _seed_scores(database)
        query = plan_aggregate(
            Query("Score"),
            ["jvars"],
            [
                Aggregate("COUNT"),
                Aggregate("COUNT", "points"),
                Aggregate("SUM", "points"),
                Aggregate("MIN", "points"),
                Aggregate("MAX", "points"),
            ],
        )
        rows = database.execute(query)
        results[name] = sorted(rows, key=lambda row: row["jvars"])
        database.close()
    assert results["memory"] == results["sqlite"]
    by_jvars = {row["jvars"]: row for row in results["memory"]}
    assert by_jvars[""]["COUNT(*)"] == 2
    assert by_jvars[""]["SUM(points)"] == 7
    assert by_jvars["k=False"]["SUM(points)"] is None
    assert by_jvars["k=False"]["COUNT(points)"] == 0
    assert by_jvars["k=True"]["MIN(points)"] == 10


def test_grouped_aggregates_under_joins(database):
    database.define_table("Author", name=ColumnType.TEXT)
    database.define_table("Book", author_id=ColumnType.INTEGER, pages=ColumnType.INTEGER)
    database.insert_many("Author", [{"name": "ada"}, {"name": "bob"}])
    database.insert_many(
        "Book",
        [
            {"author_id": 1, "pages": 100},
            {"author_id": 1, "pages": 300},
            {"author_id": 2, "pages": 50},
        ],
    )
    query = plan_aggregate(
        Query("Book").join("Author", "author_id", "id"),
        ["Author.name"],
        [Aggregate("SUM", "Book.pages"), Aggregate("COUNT")],
    )
    rows = sorted(database.execute(query), key=lambda row: row["Author.name"])
    assert rows == [
        {"Author.name": "ada", "SUM(Book.pages)": 400, "COUNT(*)": 2},
        {"Author.name": "bob", "SUM(Book.pages)": 50, "COUNT(*)": 1},
    ]


def test_count_distinct_under_joins(database):
    database.define_table("Author", name=ColumnType.TEXT)
    database.define_table("Book", author_id=ColumnType.INTEGER)
    database.insert("Author", name="ada")
    database.insert_many("Book", [{"author_id": 1}, {"author_id": 1}])
    # Two books join one author: distinct author ids collapse to 1.
    query = plan_count_distinct(
        Query("Author").join("Book", "id", "author_id"), "id"
    )
    assert database.aggregate(query) == 1


def test_min_max_decode_datetime_and_boolean():
    """MIN/MAX return stored values, so SQLite must decode them through the
    column type exactly like a row read (the memory engine holds live
    Python objects already)."""
    early = datetime.datetime(2020, 1, 1, 9, 0)
    late = datetime.datetime(2024, 6, 1, 9, 0)
    results = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        database.define_table(
            "Event", when=ColumnType.DATETIME, flag=ColumnType.BOOLEAN
        )
        database.insert_many(
            "Event",
            [{"when": early, "flag": True}, {"when": late, "flag": False}],
        )
        results[name] = (
            database.aggregate(Query("Event").with_aggregate("MIN", "when")),
            database.aggregate(Query("Event").with_aggregate("MAX", "when")),
            database.aggregate(Query("Event").with_aggregate("MIN", "flag")),
        )
        database.close()
    assert results["memory"] == results["sqlite"] == (early, late, False)


def test_grouped_dict_aggregate_still_works(database):
    """The legacy {group key: value} dict API now rides on the pushdown."""
    _seed_scores(database)
    grouped = database.aggregate(
        Query("Score").with_aggregate("COUNT").grouped_by("jid")
    )
    assert grouped == {(1,): 2, (2,): 1, (3,): 1}


def test_exists_is_single_statement_on_sqlite():
    backend = SqliteBackend()
    log = StatementLog(backend)
    database = Database(backend)
    _seed_scores(database)
    log.clear()
    assert database.exists("Score", eq("points", 7)) is True
    assert database.count_distinct("Score", "jid") == 3
    assert log.statements == [
        'SELECT EXISTS(SELECT 1 FROM "Score" WHERE points = ?)',
        'SELECT COUNT(DISTINCT "jid") FROM "Score"',
    ]
    database.close()


# -- memory index narrowing ---------------------------------------------------------------


def _indexed_table() -> Table:
    from repro.db.schema import Column, TableSchema

    schema = TableSchema(
        "T",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("jid", ColumnType.INTEGER, indexed=True),
        ),
    )
    table = Table(schema)
    for jid in (1, 1, 2, 3, None):
        table.insert({"jid": jid})
    return table


def test_candidate_rows_narrow_in_list_via_index():
    table = _indexed_table()
    candidates = table.candidate_rows(InList(col("jid"), (1, 3)))
    assert sorted(row["jid"] for row in candidates) == [1, 1, 3]


def test_candidate_rows_in_list_skips_null_bucket():
    table = _indexed_table()
    # NULL never compares equal: the NULL-keyed bucket must not be probed.
    candidates = table.candidate_rows(InList(col("jid"), (2, None)))
    assert [row["jid"] for row in candidates] == [2]


def test_candidate_rows_is_null_reads_null_bucket():
    from repro.db.expr import IsNull

    table = _indexed_table()
    candidates = table.candidate_rows(IsNull(col("jid")))
    assert [row["jid"] for row in candidates] == [None]
    # IS NOT NULL cannot use a single bucket: full scan.
    assert len(table.candidate_rows(IsNull(col("jid"), negated=True))) == 5


def test_bounded_pushdown_matches_after_index_narrowing(database):
    """End to end: the bounded outer query (jid IN subselect) returns the
    same records whether or not the memory engine narrows via the index."""
    from repro.db.query import plan_bounded

    _seed_scores(database)
    bounded = plan_bounded(Query("Score"), "jid", 2)
    rows = database.execute(bounded)
    assert sorted({row["jid"] for row in rows}) == [1, 2]
