"""The cost-aware planner: path choice, explain() reporting, and counters.

The planner must (a) pick the cheapest access path from live table
statistics, (b) report that choice -- and every alternative it costed --
through ``explain()`` without executing anything, and (c) account for
each served read under the ``plan.index.*`` counters in the glossary.
"""

from repro import obs
from repro.db import (
    Column,
    ColumnType,
    Database,
    IndexSpec,
    MemoryBackend,
    SqliteBackend,
    TableSchema,
    TableStatistics,
    between,
    choose_plan,
    gte,
    like,
)
from repro.db.expr import eq
from repro.db.query import Order
from repro.obs.metrics import COUNTER_GLOSSARY


def _schema():
    return TableSchema(
        "T",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("score", ColumnType.INTEGER, ordered=True),
            Column("name", ColumnType.TEXT, ordered=True),
            Column("tag", ColumnType.TEXT, indexed=True),
        ),
        indexes=(IndexSpec(("score", "id")),),
    )


def _stats(rows=1000):
    return TableStatistics(
        row_count=rows,
        hash_indexes={"tag": 4},
        ordered_indexes={
            "idx_T_score": ("score",),
            "idx_T_name": ("name",),
            "idx_T_score_id": ("score", "id"),
        },
        ordered_cardinality={
            "idx_T_score": 10,
            "idx_T_name": 50,
            "idx_T_score_id": 1000,
        },
    )


# -- choose_plan over synthetic statistics ---------------------------------------------


def test_bounded_range_beats_the_scan():
    choice = choose_plan(between("score", 2, 7), statistics=_stats())
    assert choice.chosen.kind == "ordered-range"
    assert choice.chosen.column == "score"
    assert choice.chosen.cost < _stats().row_count
    assert {path.kind for path in choice.considered} >= {"ordered-range", "full-scan"}


def test_hash_probe_beats_the_range():
    choice = choose_plan(eq("tag", "x"), statistics=_stats())
    assert choice.chosen.kind == "hash-probe"
    assert choice.chosen.column == "tag"


def test_forced_scan_still_reports_the_alternatives():
    choice = choose_plan(
        between("score", 2, 7), statistics=_stats(), use_indexes=False
    )
    assert choice.chosen.kind == "full-scan"
    assert any(path.kind == "ordered-range" for path in choice.considered)


def test_null_bound_plans_an_empty_range():
    choice = choose_plan(between("score", None, 7), statistics=_stats())
    assert choice.chosen.kind == "ordered-range"
    assert choice.chosen.empty
    assert choice.chosen.estimated_rows == 0


def test_single_column_index_serves_order_but_composite_does_not():
    served = choose_plan(
        gte("score", 5), order_by=(Order("score"),), statistics=_stats()
    )
    assert served.chosen.kind == "ordered-range"
    assert served.chosen.serves_order
    # Only name-ordered paths could serve ORDER BY name; a range on score
    # cannot, so the plan pays the sort surcharge instead of lying.
    unserved = choose_plan(
        gte("score", 5), order_by=(Order("name"),), statistics=_stats()
    )
    assert not unserved.chosen.serves_order


def test_ordered_scan_wins_for_bounded_order_by_without_filter():
    choice = choose_plan(
        None, order_by=(Order("score"),), limit=5, statistics=_stats()
    )
    assert choice.chosen.kind == "ordered-scan"
    assert choice.chosen.serves_order
    assert choice.chosen.cost < _stats().row_count


def test_prefix_like_plans_a_range_on_the_name_index():
    choice = choose_plan(
        like("name", "al%", case_sensitive=True), statistics=_stats()
    )
    assert choice.chosen.kind == "ordered-range"
    assert choice.chosen.column == "name"
    assert choice.chosen.exact  # pure prefix: the probe range is the match set


# -- explain() against live engines ----------------------------------------------------


def test_memory_explain_reports_chosen_and_considered_plans():
    with Database(MemoryBackend()) as database:
        database.create_table(_schema())
        database.insert_many("T", [{"score": n % 10, "tag": "x"} for n in range(50)])
        report = database.explain(
            database.query("T").filter(between("score", 2, 4))
        )
        assert report["chosen_plan"]["access"] == "ordered-range"
        assert report["chosen_plan"]["index"] == "idx_T_score"
        assert any(
            path["access"] == "full-scan" for path in report["considered_plans"]
        )
        assert report["sql"].startswith('SELECT * FROM "T"')


def test_memory_last_plan_reflects_the_executed_read():
    backend = MemoryBackend()
    with Database(backend) as database:
        database.create_table(_schema())
        database.insert_many("T", [{"score": n, "tag": "x"} for n in range(20)])
        database.execute(database.query("T").filter(eq("tag", "x")))
        assert backend.last_plan("T").chosen.kind == "hash-probe"
        database.execute(database.query("T").filter(between("score", 3, 8)))
        assert backend.last_plan("T").chosen.kind == "ordered-range"
        database.execute(database.query("T").filter(like("name", "%odd%")))
        assert backend.last_plan("T").chosen.kind == "full-scan"


def test_sqlite_explain_reports_index_backed_plan_and_ddl():
    with Database(SqliteBackend()) as database:
        database.create_table(_schema())
        database.insert_many("T", [{"score": n % 10, "tag": "x"} for n in range(50)])
        report = database.explain(
            database.query("T").filter(between("score", 2, 4))
        )
        assert any("idx_T_score" in line for line in report["sqlite_plan"])
        ddl = report["index_ddl"]
        assert any('"idx_T_score" ON "T" ("score")' in statement for statement in ddl)
        assert any(
            '"idx_T_score_id" ON "T" ("score", "id")' in statement
            for statement in ddl
        )


def test_sqlite_forced_scan_emits_no_index_ddl():
    backend = SqliteBackend(emit_indexes=False)
    with Database(backend) as database:
        database.create_table(_schema())
        assert backend.index_ddl() == []


def test_explain_executes_nothing_and_emits_no_statement_events():
    for backend in (MemoryBackend(), SqliteBackend()):
        with Database(backend) as database:
            database.create_table(_schema())
            database.insert_many("T", [{"score": n} for n in range(10)])
            with database.observe_statements() as log:
                database.explain(database.query("T").filter(gte("score", 5)))
            assert log.statements == []


# -- the plan.index.* counters ---------------------------------------------------------


def test_every_access_path_counter_is_in_the_glossary():
    for name in (
        "plan.index.hash_probe",
        "plan.index.range_probe",
        "plan.index.ordered_scan",
        "plan.index.full_scan",
    ):
        assert name in COUNTER_GLOSSARY


def test_served_reads_bump_the_access_path_counters():
    obs.reset()
    with obs.tracing():
        with Database(MemoryBackend()) as database:
            database.create_table(_schema())
            database.insert_many("T", [{"score": n, "tag": "x"} for n in range(20)])
            database.execute(database.query("T").filter(eq("tag", "x")))
            database.execute(database.query("T").filter(between("score", 3, 8)))
            database.execute(database.query("T").ordered_by("score").limited(3))
            database.execute(database.query("T").filter(like("name", "%odd%")))
    assert obs.totals.get("plan.index.hash_probe") >= 1
    assert obs.totals.get("plan.index.range_probe") >= 1
    assert obs.totals.get("plan.index.ordered_scan") >= 1
    assert obs.totals.get("plan.index.full_scan") >= 1
    obs.reset()
