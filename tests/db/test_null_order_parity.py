"""NULL placement under plain ORDER BY must match across backends.

Pre-existing divergence (ROADMAP): the memory engine sorts ``None`` last
ascending (first descending) while bare SQLite sorts NULL first ascending.
``query_to_sql`` now renders a ``(col IS NULL)`` sort flag ahead of every
plain order term, pinning SQLite to the memory convention -- the same
discipline the bounded subquery's grouped ordering already used.
"""

from repro.db import Database, MemoryBackend, SqliteBackend
from repro.db.query import Query
from repro.db.schema import ColumnType
from repro.db.sqlgen import query_to_sql


def _seed(database: Database) -> None:
    database.define_table("T", name=ColumnType.TEXT, rank=ColumnType.INTEGER)
    database.insert_many(
        "T",
        [
            {"name": "ada", "rank": 2},
            {"name": None, "rank": 1},
            {"name": "bob", "rank": None},
            {"name": None, "rank": 3},
        ],
    )


def test_plain_order_by_renders_is_null_flag():
    statement, _params = query_to_sql(Query("T").ordered_by("name"))
    assert statement == (
        'SELECT * FROM "T" ORDER BY ("name" IS NULL) ASC, "name" ASC'
    )
    statement, _params = query_to_sql(Query("T").ordered_by("name", ascending=False))
    assert statement.endswith('ORDER BY ("name" IS NULL) DESC, "name" DESC')


def test_row_order_with_nulls_is_backend_identical():
    orders = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        _seed(database)
        ascending = database.execute(Query("T").ordered_by("name").ordered_by("rank"))
        descending = database.execute(Query("T").ordered_by("name", ascending=False))
        orders[name] = (
            [(row["name"], row["rank"]) for row in ascending],
            [row["name"] for row in descending],
        )
        database.close()
    assert orders["memory"] == orders["sqlite"]
    ascending, descending = orders["memory"]
    # NULL names sort last ascending...
    assert ascending == [("ada", 2), ("bob", None), (None, 1), (None, 3)]
    # ...and first descending (the memory engine's convention, now shared).
    assert descending[:2] == [None, None]


def test_ordered_limit_keeps_same_rows_on_both_backends():
    kept = {}
    for name, database in (
        ("memory", Database(MemoryBackend())),
        ("sqlite", Database(SqliteBackend())),
    ):
        _seed(database)
        rows = database.execute(Query("T").ordered_by("rank").limited(2))
        kept[name] = [row["rank"] for row in rows]
        database.close()
    # Without the flag SQLite would keep the NULL-ranked row first.
    assert kept["memory"] == kept["sqlite"] == [1, 2]
