"""Set-oriented write plans: rendering, execution and backend parity.

Covers :func:`~repro.db.query.plan_update` / :func:`plan_delete` /
:func:`plan_keys`, the sqlgen UPDATE/DELETE rendering, and
``Backend.execute_update`` / ``execute_delete`` on both backends -- the
memory engine must mutate exactly the rows SQLite's one statement touches.
"""

import pytest

from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.db.expr import eq
from repro.db.query import DeletePlan, Query, UpdatePlan, plan_delete, plan_keys, plan_update
from repro.db.schema import ColumnType
from repro.db.sqlgen import delete_to_sql, update_to_sql


def _seed(database: Database) -> None:
    database.define_table(
        "Doc", jid=ColumnType.INTEGER, title=ColumnType.TEXT, owner=ColumnType.TEXT
    )
    rows = []
    for jid, owner in ((1, "ada"), (2, "ada"), (3, "bob")):
        # Two facet rows per record, one "secret" and one "public".
        rows.append({"jid": jid, "title": f"secret{jid}", "owner": owner})
        rows.append({"jid": jid, "title": "[redacted]", "owner": owner})
    database.insert_many("Doc", rows)


@pytest.fixture(params=["memory", "sqlite"])
def database(request):
    backend = MemoryBackend() if request.param == "memory" else SqliteBackend()
    db = Database(backend)
    _seed(db)
    yield db
    db.close()


# -- rendering --------------------------------------------------------------------------


def test_plan_update_renders_jid_subselect():
    plan = plan_update(
        Query("Doc").filter(eq("owner", "ada")), {"owner": "eve"}, "jid"
    )
    statement, params = update_to_sql(plan)
    assert statement == (
        'UPDATE "Doc" SET "owner" = ? '
        'WHERE jid IN (SELECT DISTINCT "jid" FROM "Doc" WHERE owner = ?)'
    )
    assert params == ["eve", "ada"]


def test_plan_delete_without_filters_has_no_where():
    assert delete_to_sql(plan_delete(Query("Doc"), "jid")) == ('DELETE FROM "Doc"', [])


def test_bounded_plan_keeps_order_and_limit_inside_subselect():
    query = Query("Doc").filter(eq("owner", "ada")).ordered_by("title").limited(1)
    statement, _params = delete_to_sql(plan_delete(query, "jid"))
    assert statement.startswith('DELETE FROM "Doc" WHERE jid IN (SELECT')
    assert 'LIMIT 1' in statement
    # Ordered bounded subselects use the deterministic grouped form.
    assert 'GROUP BY "jid"' in statement and 'MIN("title")' in statement


def test_unbounded_plan_drops_ordering():
    query = Query("Doc").filter(eq("owner", "ada")).ordered_by("title")
    statement, _params = update_to_sql(plan_update(query, {"owner": "eve"}, "jid"))
    assert "ORDER BY" not in statement


def test_plan_keys_qualifies_under_joins():
    query = Query("Doc").join("Review", "jid", "doc")
    sub = plan_keys(query, "jid")
    assert sub.columns == ("Doc.jid",)
    assert sub.distinct


def test_plan_update_rejects_empty_assignments():
    with pytest.raises(ValueError):
        plan_update(Query("Doc"), {}, "jid")


def test_joined_or_bounded_plans_require_key_column():
    with pytest.raises(ValueError):
        plan_delete(Query("Doc").join("Review", "jid", "doc"))
    with pytest.raises(ValueError):
        plan_update(Query("Doc").limited(2), {"owner": "eve"})


def test_plans_report_tables_read():
    plan = plan_delete(Query("Doc").join("Review", "jid", "doc"), "jid")
    assert plan.tables_read() == ("Doc", "Review")
    assert DeletePlan("Doc").tables_read() == ("Doc",)
    assert UpdatePlan("Doc", {"owner": "x"}).tables_read() == ("Doc",)


# -- execution --------------------------------------------------------------------------


def test_execute_update_covers_whole_records(database):
    plan = plan_update(
        database.query("Doc").filter(eq("title", "secret1")), {"owner": "eve"}, "jid"
    )
    assert database.execute_update(plan) == 2  # both facet rows of jid 1
    owners = {row["owner"] for row in database.find("Doc", jid=1)}
    assert owners == {"eve"}
    assert {row["owner"] for row in database.find("Doc", jid=2)} == {"ada"}


def test_execute_delete_covers_whole_records(database):
    plan = plan_delete(database.query("Doc").filter(eq("title", "secret2")), "jid")
    assert database.execute_delete(plan) == 2
    assert database.find("Doc", jid=2) == []
    assert database.count("Doc") == 4


def test_execute_delete_without_key_is_row_oriented(database):
    plan = plan_delete(database.query("Doc").filter(eq("title", "secret3")))
    assert database.execute_delete(plan) == 1  # only the matching row
    assert len(database.find("Doc", jid=3)) == 1


def test_bounded_execute_delete_removes_first_records_only(database):
    query = database.query("Doc").filter(eq("owner", "ada")).ordered_by("jid").limited(1)
    assert database.execute_delete(plan_delete(query, "jid")) == 2
    assert database.find("Doc", jid=1) == []
    assert len(database.find("Doc", jid=2)) == 2


def test_backend_parity_on_update():
    results = []
    for backend in (MemoryBackend(), SqliteBackend()):
        with Database(backend) as db:
            _seed(db)
            plan = plan_update(
                db.query("Doc").filter(eq("owner", "ada")).ordered_by("jid").limited(1),
                {"owner": "eve"},
                "jid",
            )
            changed = db.execute_update(plan)
            rows = sorted(
                (row["jid"], row["title"], row["owner"])
                for row in db.rows("Doc")
            )
            results.append((changed, rows))
    assert results[0] == results[1]


def test_sqlite_write_plans_execute_one_statement():
    backend = SqliteBackend()
    log = StatementLog(backend)
    db = Database(backend)
    _seed(db)
    log.clear()
    db.execute_update(
        plan_update(db.query("Doc").filter(eq("owner", "ada")), {"owner": "eve"}, "jid")
    )
    db.execute_delete(
        plan_delete(db.query("Doc").filter(eq("owner", "bob")), "jid")
    )
    assert len(log.statements) == 2
    update_sql, delete_sql = log.statements
    assert update_sql.startswith('UPDATE "Doc" SET') and "jid IN (SELECT" in update_sql
    assert delete_sql.startswith('DELETE FROM "Doc"') and "jid IN (SELECT" in delete_sql
    db.close()


def test_write_plans_publish_invalidation(database):
    events = []
    database.invalidation.subscribe(lambda table: events.append(table))
    database.execute_update(
        plan_update(database.query("Doc").filter(eq("owner", "ada")), {"owner": "eve"}, "jid")
    )
    assert events == ["Doc"]
    database.execute_delete(plan_delete(database.query("Doc"), "jid"))
    assert events == ["Doc", "Doc"]
    # A write matching nothing publishes nothing.
    database.execute_delete(
        plan_delete(database.query("Doc").filter(eq("owner", "nobody")), "jid")
    )
    assert events == ["Doc", "Doc"]
