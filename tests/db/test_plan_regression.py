"""Plan-regression gate: the planner must not change any bench's statements.

Every statement-shape benchmark (``benchmarks/bench_*.py`` with a
``run(rows, smoke)`` gate) already asserts its scenario's captured SQL --
one SELECT per bounded fetch, the jid subselect, the pushed-down
aggregate, the single-statement writes.  Replaying them here, CI-sized,
under the cost-aware planner proves the ordered indexes added no extra
statements and no worse plan to any pre-existing scenario: a planner
regression turns a bench's internal assertions red, which turns this
tier-1 test red.

A direct FORM-level check rides along: with index DDL enabled vs
suppressed, an ordered-field workload must produce byte-identical
statement sequences on SQLite -- planning is invisible in the SQL.
"""

import importlib.util
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

GATED_BENCHES = [
    "bench_limit_pushdown",
    "bench_aggregate_pushdown",
    "bench_write_pushdown",
    "bench_policy_pushdown",
    "bench_planner",
]


def _load_bench(name):
    path = os.path.join(REPO, "benchmarks", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclass/typing machinery inside the module resolves.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", GATED_BENCHES)
def test_bench_scenario_statements_and_plans_hold(name):
    module = _load_bench(name)
    assert module.run(rows=120, smoke=True) == 0, (
        f"{name} regressed under the cost-aware planner; its own stderr "
        "lists the violated statement/plan assertions"
    )


def test_index_ddl_never_changes_the_statement_stream():
    from repro.db import Database, SqliteBackend, StatementLog
    from repro.form import FORM, CharField, IntegerField, JModel, use_form
    from repro.cache import CacheConfig

    class PlanRegressionNote(JModel):
        title = CharField(max_length=64, ordered=True)
        score = IntegerField(ordered=True)

    streams = {}
    for emit_indexes in (True, False):
        backend = SqliteBackend(emit_indexes=emit_indexes)
        database = Database(backend)
        form = FORM(database, cache_config=CacheConfig.disabled())
        form.register_all([PlanRegressionNote])
        with use_form(form), StatementLog(backend) as log:
            with use_form(form):
                PlanRegressionNote.objects.bulk_create(
                    [
                        PlanRegressionNote(title=f"t{i:03d}", score=i % 7)
                        for i in range(40)
                    ]
                )
                PlanRegressionNote.objects.filter(score=3).fetch()
                PlanRegressionNote.objects.filter(score=3).update(score=4)
                PlanRegressionNote.objects.filter(score=6).delete()
                PlanRegressionNote.objects.all().count()
            streams[emit_indexes] = list(log.statements)
        database.close()
    assert streams[True] == streams[False]
    assert streams[True], "the workload should have produced statements"
