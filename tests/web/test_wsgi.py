"""The WSGI adapter and the bundled threaded server."""

import io
import threading
import urllib.request

import pytest

from repro.apps.conf.models import ConferencePhase
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import build_conf_app, setup_conf
from repro.db import Database, MemoryBackend
from repro.web import BackgroundServer, WsgiAdapter, WsgiClient
from repro.web.serve import demo_app, make_threaded_server


@pytest.fixture
def conf_app():
    form = setup_conf(Database(MemoryBackend()))
    created = seed_conference(form, papers=4, users=4, pc_members=2)
    yield build_conf_app(form), created
    ConferencePhase.reset()


# -- environ translation ----------------------------------------------------------------


def test_build_request_parses_environ():
    adapter = WsgiAdapter(build_conf_app(setup_conf(Database(MemoryBackend()))))
    body = b"title=Hello+World"
    environ = {
        "REQUEST_METHOD": "POST",
        "PATH_INFO": "/submit",
        "QUERY_STRING": "draft=1",
        "CONTENT_TYPE": "application/x-www-form-urlencoded",
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
        "HTTP_COOKIE": "repro_session=s1-abc",
    }
    request = adapter.build_request(environ)
    assert request.method == "POST"
    assert request.path == "/submit"
    assert request.params["draft"] == "1"
    assert request.form("title") == "Hello World"
    assert request.session_id == "s1-abc"


def test_wsgi_response_includes_session_cookie_and_content_length(conf_app):
    app, _created = conf_app
    client = WsgiClient(app)
    response = client.get("/papers")
    assert response.status == 200
    assert "Content-Length" in response.headers
    # Anonymous sessions are never persisted, so no cookie churns per request;
    # the cookie appears once the session gains state (login).
    assert len(client.cookies) == 0
    client.post("/login", username="author0")
    assert len(client.cookies) == 1


def test_wsgi_session_persists_across_requests(conf_app):
    app, _created = conf_app
    client = WsgiClient(app)
    assert client.post("/login", username="author0").status == 302
    # The login rides the cookie: a subsequent personal page must render the
    # viewer-specific facets (author0 sees their own name on their papers).
    page = client.get("/papers")
    assert page.status == 200
    assert "author0" in page.body


def test_wsgi_clients_are_isolated_viewers(conf_app):
    app, _created = conf_app
    author = WsgiClient(app)
    stranger = WsgiClient(app)
    author.post("/login", username="author0")
    author_page = author.get("/papers")
    stranger_page = stranger.get("/papers")
    assert "author0" in author_page.body
    assert "author0" not in stranger_page.body  # anonymous during submission


def test_unknown_route_is_404(conf_app):
    app, _created = conf_app
    assert WsgiClient(app).get("/no-such-page").status == 404


def test_login_rotates_session_id_against_fixation(conf_app):
    app, _created = conf_app
    attacker = WsgiClient(app)
    attacker.post("/login", username="author1")
    attacker_sid = next(iter(attacker.cookies.values())).value

    victim = WsgiClient(app)
    victim.cookies.load(f"repro_session={attacker_sid}")  # planted cookie
    victim.post("/login", username="author0")
    victim_sid = next(iter(victim.cookies.values())).value
    assert victim_sid != attacker_sid  # id rotated on login

    # The planted cookie must not ride along into the victim's login.
    replay = WsgiClient(app)
    replay.cookies.load(f"repro_session={attacker_sid}")
    assert "author0" not in replay.get("/papers").body


def test_anonymous_requests_do_not_evict_logged_in_sessions(conf_app):
    # Cookie-less requests mint sessions lazily (never stored while empty),
    # so a flood of them cannot push authenticated sessions out of the
    # LRU-bounded store.
    app, _created = conf_app
    app.sessions.max_sessions = 5
    user = WsgiClient(app)
    assert user.post("/login", username="author0").status == 302
    for _ in range(50):
        WsgiClient(app).get("/papers")  # fresh client per request, no cookie
    page = user.get("/papers")
    assert page.status == 200
    assert "author0" in page.body  # still logged in
    assert len(app.sessions) <= 5


# -- threaded server --------------------------------------------------------------------


def test_background_server_serves_http(conf_app):
    app, _created = conf_app
    with BackgroundServer(app) as server:
        with urllib.request.urlopen(server.url + "/papers", timeout=10) as response:
            assert response.status == 200
            assert "Submitted papers" in response.read().decode()


def test_background_server_concurrent_requests(conf_app):
    app, _created = conf_app
    statuses = []
    with BackgroundServer(app) as server:
        def fetch():
            with urllib.request.urlopen(server.url + "/users", timeout=10) as response:
                statuses.append(response.status)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert statuses == [200] * 6


def test_make_threaded_server_binds_free_port(conf_app):
    app, _created = conf_app
    server = make_threaded_server(app)
    try:
        assert server.server_address[1] != 0
    finally:
        server.server_close()


def test_demo_app_is_a_wsgi_callable():
    wsgi = demo_app("conf", seed_size=2)
    client = WsgiClient(wsgi)
    response = client.get("/papers")
    assert response.status == 200
    ConferencePhase.reset()
