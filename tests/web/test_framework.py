"""Tests for the web framework: HTTP objects, routing, templates, sessions,
auth and the application classes."""

import pytest

from repro.web import (
    Application,
    AuthenticationError,
    HttpError,
    Request,
    Response,
    Route,
    Router,
    SessionStore,
    Template,
    TestClient,
    render_template,
)
from repro.web.auth import Authenticator, hash_password
from repro.web.http import build_url
from repro.web.templates import TemplateError


# -- http ---------------------------------------------------------------------------


def test_request_parses_query_string_and_params():
    request = Request("get", "/papers?page=2&sort=title", params={"page": 3})
    assert request.method == "GET" and request.is_get
    assert request.path == "/papers"
    assert request.param("sort") == "title"
    assert request.param("page") == 3  # explicit params win
    assert request.param("missing", "default") == "default"


def test_request_form_data_and_repr():
    request = Request("POST", "/submit", data={"title": "x"})
    assert request.is_post and request.form("title") == "x"
    assert "POST /submit" in repr(request)


def test_response_helpers():
    assert Response.redirect("/next").status == 302
    assert Response.not_found().status == 404
    assert Response.forbidden().status == 403
    assert Response("ok").ok
    assert "Content-Type" in Response("x").headers
    assert build_url("/a", q=1) == "/a?q=1"
    assert build_url("/a") == "/a"


# -- routing -------------------------------------------------------------------------


def test_router_matches_static_and_parameterised_paths():
    router = Router()
    router.add("/papers", lambda request: None, name="papers")
    router.add("/paper/<pk>", lambda request: None, name="paper")
    request = Request("GET", "/paper/17")
    route = router.resolve(request)
    assert route.name == "paper"
    assert request.path_params == {"pk": "17"}
    assert router.resolve(Request("GET", "/papers")).name == "papers"
    assert router.resolve(Request("GET", "/nope")) is None
    assert router.url_for("paper", pk=3) == "/paper/3"
    with pytest.raises(LookupError):
        router.url_for("unknown")


def test_route_method_filtering():
    route = Route("/only-post", lambda request: None, methods=("POST",))
    assert route.match("/only-post", "GET") is None
    assert route.match("/only-post", "POST") == {}


# -- templates ------------------------------------------------------------------------


def test_template_interpolation_and_escaping():
    rendered = render_template("Hello {{ name }}!", {"name": "<world>"})
    assert rendered == "Hello &lt;world&gt;!"
    assert render_template("{{ missing }}", {}) == ""


def test_template_dotted_lookup_and_loops():
    source = "{% for item in items %}[{{ item.label }}]{% endfor %}"
    rendered = render_template(source, {"items": [{"label": "a"}, {"label": "b"}]})
    assert rendered == "[a][b]"


def test_template_if_else():
    source = "{% if flag %}yes{% else %}no{% endif %}"
    assert render_template(source, {"flag": True}) == "yes"
    assert render_template(source, {"flag": False}) == "no"
    assert render_template("{% if flag %}x{% endif %}", {}) == ""


def test_template_errors():
    with pytest.raises(TemplateError):
        Template("{% for x in items %}unclosed")
    with pytest.raises(TemplateError):
        Template("{% bogus %}")
    with pytest.raises(TemplateError):
        Template("{% for broken %}{% endfor %}")


# -- sessions and auth -------------------------------------------------------------------


def test_session_store_roundtrip():
    store = SessionStore()
    session = store.create()
    session["user_id"] = 7
    assert store.get(session.session_id)["user_id"] == 7
    assert store.get(None) is None
    assert store.get_or_create(session.session_id) is session
    assert store.get_or_create("unknown").session_id != session.session_id
    store.drop(session.session_id)
    assert store.get(session.session_id) is None


def test_authenticator_login_logout():
    auth = Authenticator(user_loader=lambda user_id: {"id": user_id})
    auth.register("alice", "wonderland", user_id=7)
    store = SessionStore()
    session = store.create()
    user = auth.login(session, "alice", "wonderland")
    assert user == {"id": 7}
    assert auth.user_for(session) == {"id": 7}
    auth.logout(session)
    assert auth.user_for(session) is None
    with pytest.raises(AuthenticationError):
        auth.login(session, "alice", "wrong")
    with pytest.raises(AuthenticationError):
        auth.login(session, "nobody", "pw")
    assert auth.has_account("alice")
    assert hash_password("a") != hash_password("b")


# -- application dispatch ------------------------------------------------------------------


def make_app():
    app = Application("test")
    app.add_template("hello", "Hello {{ name }}")

    @app.route("/hello", methods=("GET",), template="hello")
    def hello(request):
        return {"name": request.param("name", "world")}

    @app.route("/pair", methods=("GET",))
    def pair(request):
        return ("Value: {{ value }}", {"value": 42})

    @app.route("/raw", methods=("GET",))
    def raw(request):
        return Response("raw body", status=201)

    @app.route("/boom", methods=("GET",))
    def boom(request):
        raise HttpError(418, "teapot")

    @app.route("/whoami", methods=("GET",))
    def whoami(request):
        return Response(str(request.user))

    return app


def test_application_renders_templates_and_contexts():
    client = TestClient(make_app())
    assert client.get("/hello").body == "Hello world"
    assert client.get("/hello", name="dev").body == "Hello dev"
    assert client.get("/pair").body == "Value: 42"
    response = client.get("/raw")
    assert response.status == 201 and response.body == "raw body"
    assert client.get("/boom").status == 418
    assert client.get("/missing").status == 404


def test_sessions_persist_across_client_requests():
    app = make_app()
    app.auth.set_user_loader(lambda user_id: f"user-{user_id}")
    client = TestClient(app)
    assert client.get("/whoami").body == "None"
    client.force_login(9, "niner")
    assert client.get("/whoami").body == "user-9"
    client.logout()
    assert client.get("/whoami").body == "None"
