"""FORM-level cache behaviour: hits, write-through invalidation, stats.

The ``conf_form`` fixture runs every test against both backends (the
``database`` fixture is parametrized over the memory engine and SQLite), so
the invalidation hooks are exercised end to end on each.
"""

import pytest

from repro.apps.conf.models import ConferencePhase, ConfUser, Paper
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import setup_conf
from repro.cache import CacheConfig
from repro.form import use_form, viewer_context


@pytest.fixture
def conf_form(database):
    form = setup_conf(database)
    yield form
    ConferencePhase.reset()


def _titles(papers):
    return sorted(p.title for p in papers)


def test_repeated_fetch_hits_query_and_label_caches(conf_form):
    created = seed_conference(conf_form, papers=8)
    chair = created["chair"][0]
    with use_form(conf_form), viewer_context(chair):
        first = Paper.objects.all().fetch()
        baseline_hits = conf_form.caches.queries.stats.hits
        second = Paper.objects.all().fetch()
    assert _titles(first) == _titles(second)
    assert conf_form.caches.queries.stats.hits > baseline_hits
    assert conf_form.caches.labels.stats.hits > 0


def test_create_invalidates_cached_view(conf_form):
    created = seed_conference(conf_form, papers=4)
    chair = created["chair"][0]
    author = created["users"][0]
    with use_form(conf_form):
        with viewer_context(chair):
            before = Paper.objects.all().fetch()
        Paper.objects.create(title="Fresh Result", author=author)
        with viewer_context(chair):
            after = Paper.objects.all().fetch()
    assert len(after) == len(before) + 1
    assert "Fresh Result" in _titles(after)


def test_update_through_save_invalidates(conf_form):
    created = seed_conference(conf_form, papers=4)
    chair = created["chair"][0]
    with use_form(conf_form):
        with viewer_context(chair):
            target = ConfUser.objects.get(name="author0")
            assert target.email == "author0@conf.org"
        target.email = "changed@conf.org"
        target.save()
        with viewer_context(chair):
            fresh = ConfUser.objects.get(name="author0")
    # The chair sees every email; a stale cache would show the old address.
    assert fresh.email == "changed@conf.org"


def test_delete_invalidates(conf_form):
    created = seed_conference(conf_form, papers=4)
    chair = created["chair"][0]
    with use_form(conf_form):
        with viewer_context(chair):
            papers = Paper.objects.all().fetch()
            count_before = len(papers)
        papers[0].delete()
        with viewer_context(chair):
            remaining = Paper.objects.all().fetch()
    assert len(remaining) == count_before - 1


def test_queryset_delete_invalidates(conf_form):
    created = seed_conference(conf_form, papers=4)
    chair = created["chair"][0]
    with use_form(conf_form):
        Paper.objects.filter(title="Paper 0").delete()
        with viewer_context(chair):
            remaining = Paper.objects.all().fetch()
    assert "Paper 0" not in _titles(remaining)


def test_phase_change_refreshes_label_outcomes(conf_form):
    """Out-of-band policy state (the phase) must not leave stale outcomes."""
    created = seed_conference(conf_form, papers=4)
    author = created["users"][1]  # not the author of Paper 0
    with use_form(conf_form):
        with viewer_context(author):
            during_review = Paper.objects.get(title="Paper 0")
            assert during_review.author is None  # anonymous during review
        ConferencePhase.set(ConferencePhase.FINAL)
        with viewer_context(author):
            after_decision = Paper.objects.get(title="Paper 0")
            assert after_decision.author is not None


def test_form_clear_drops_cached_entries(conf_form):
    created = seed_conference(conf_form, papers=4)
    chair = created["chair"][0]
    with use_form(conf_form), viewer_context(chair):
        Paper.objects.all().fetch()
    conf_form.clear()
    assert len(conf_form.caches.queries) == 0
    assert len(conf_form.caches.labels) == 0
    with use_form(conf_form), viewer_context(chair):
        assert Paper.objects.all().fetch() == []


def test_disabled_config_bypasses_every_layer(database):
    form = setup_conf(database, cache_config=CacheConfig.disabled())
    try:
        created = seed_conference(form, papers=4)
        chair = created["chair"][0]
        with use_form(form), viewer_context(chair):
            first = Paper.objects.all().fetch()
            second = Paper.objects.all().fetch()
        assert _titles(first) == _titles(second)
        stats = form.caches.stats()
        assert stats["queries"]["hits"] == 0
        assert stats["queries"]["puts"] == 0
        assert stats["labels"]["puts"] == 0
    finally:
        ConferencePhase.reset()


def test_stats_reporting_shape(conf_form):
    created = seed_conference(conf_form, papers=2)
    chair = created["chair"][0]
    with use_form(conf_form), viewer_context(chair):
        Paper.objects.all().fetch()
        Paper.objects.all().fetch()
    stats = conf_form.caches.stats()
    assert set(stats) == {"queries", "labels", "fragments"}
    for layer in stats.values():
        assert {"hits", "misses", "puts", "evictions", "expirations",
                "invalidations", "hit_rate"} <= set(layer)
    assert 0.0 <= stats["queries"]["hit_rate"] <= 1.0
