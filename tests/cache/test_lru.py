"""Unit tests for the generic LRU/TTL cache and its statistics."""

import pytest

from repro.cache import MISSING, LRUCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_put_get_roundtrip_and_miss():
    cache = LRUCache(max_entries=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default="d") == "d"
    assert len(cache) == 1


def test_falsy_values_distinguishable_from_misses():
    cache = LRUCache(max_entries=4)
    cache.put("false", False)
    cache.put("none", None)
    assert cache.lookup("false") is False
    assert cache.lookup("none") is None
    assert cache.lookup("absent") is MISSING


def test_lru_eviction_order():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh "a": "b" is now the LRU tail
    cache.put("c", 3)
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.stats.evictions == 1


def test_max_entries_zero_disables_storage():
    cache = LRUCache(max_entries=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_unbounded_when_max_entries_none():
    cache = LRUCache(max_entries=None)
    for index in range(5000):
        cache.put(index, index)
    assert len(cache) == 5000
    assert cache.stats.evictions == 0


def test_ttl_expiry_is_lazy_and_counted():
    clock = FakeClock()
    cache = LRUCache(max_entries=8, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.9)
    assert cache.get("a") == 1
    clock.advance(0.2)  # now past the TTL
    assert cache.get("a") is None
    assert cache.stats.expirations == 1
    assert "a" not in cache


def test_purge_expired_drops_only_stale_entries():
    clock = FakeClock()
    cache = LRUCache(max_entries=8, ttl=10.0, clock=clock)
    cache.put("old", 1)
    clock.advance(11)
    cache.put("fresh", 2)
    assert cache.purge_expired() == 1
    assert cache.get("fresh") == 2
    assert len(cache) == 1


def test_remove_and_clear_count_invalidations():
    cache = LRUCache(max_entries=8)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.remove("a") is True
    assert cache.remove("a") is False
    assert cache.clear() == 1
    assert cache.stats.invalidations == 2
    assert len(cache) == 0


def test_stats_hit_rate():
    cache = LRUCache(max_entries=8)
    cache.put("a", 1)
    cache.get("a")
    cache.get("a")
    cache.get("nope")
    stats = cache.stats
    assert stats.hits == 2 and stats.misses == 1
    assert stats.hit_rate == pytest.approx(2 / 3)
    snapshot = stats.snapshot()
    assert snapshot["hits"] == 2 and snapshot["hit_rate"] == pytest.approx(2 / 3)
    stats.reset()
    assert stats.lookups == 0 and stats.hit_rate == 0.0


def test_on_evict_callback_sees_eviction_expiry_and_invalidation():
    clock = FakeClock()
    seen = []
    cache = LRUCache(max_entries=2, ttl=10.0, clock=clock, on_evict=lambda k, v: seen.append(k))
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    cache.remove("b")
    clock.advance(11)
    assert cache.get("c") is None  # expired
    assert seen == ["a", "b", "c"]


def test_negative_max_entries_rejected():
    with pytest.raises(ValueError):
        LRUCache(max_entries=-1)
