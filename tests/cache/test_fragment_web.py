"""The rendered-fragment cache in the web layer."""

import pytest

from repro.apps.conf.models import ConferencePhase
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import build_conf_app, setup_conf
from repro.cache import CacheConfig
from repro.db import Database, MemoryBackend
from repro.web import TestClient


@pytest.fixture
def fragment_app():
    config = CacheConfig().with_fragments(ttl=None)
    form = setup_conf(Database(MemoryBackend()), cache_config=config)
    created = seed_conference(form, papers=6)
    app = build_conf_app(form)
    yield form, app, created
    ConferencePhase.reset()


def _client_for(app, viewer):
    client = TestClient(app)
    client.force_login(viewer.jid, viewer.name)
    return client


def test_repeat_get_served_from_fragment_cache(fragment_app):
    form, app, created = fragment_app
    client = _client_for(app, created["chair"][0])
    first = client.get("/papers")
    assert first.ok
    hits_before = form.caches.fragments.stats.hits
    second = client.get("/papers")
    assert second.body == first.body
    assert form.caches.fragments.stats.hits == hits_before + 1


def test_fragments_are_per_viewer(fragment_app):
    form, app, created = fragment_app
    chair_body = _client_for(app, created["chair"][0]).get("/users").body
    author_body = _client_for(app, created["users"][0]).get("/users").body
    # The chair sees every email; the author sees placeholders.  If the
    # fragment keys collided, one of the two would get the other's page.
    assert "author1@conf.org" in chair_body
    assert "author1@conf.org" not in author_body
    assert "[hidden email]" in author_body


def test_post_invalidates_fragments(fragment_app):
    form, app, created = fragment_app
    author = created["users"][0]
    client = _client_for(app, author)
    before = client.get("/papers")
    assert "Brand New Paper" not in before.body
    response = client.post("/submit", title="Brand New Paper")
    assert response.status in (302, 200)
    after = client.get("/papers")
    assert "Brand New Paper" in after.body


def test_anonymous_viewer_also_cached_separately(fragment_app):
    form, app, created = fragment_app
    anonymous = TestClient(app)
    chair = _client_for(app, created["chair"][0])
    anon_body = anonymous.get("/users").body
    chair_body = chair.get("/users").body
    assert "author0@conf.org" not in anon_body
    assert "author0@conf.org" in chair_body
    # Second anonymous hit comes from the cache and stays scrubbed.
    assert anonymous.get("/users").body == anon_body


def test_fragment_hit_preserves_headers(fragment_app):
    form, app, created = fragment_app
    client = _client_for(app, created["chair"][0])
    first = client.get("/papers")
    second = client.get("/papers")  # served from the fragment cache
    assert second.headers == first.headers


def test_crashing_post_still_invalidates_viewer_caches(fragment_app):
    form, app, created = fragment_app

    @app.route("/explode", methods=("POST",))
    def explode(request):
        raise RuntimeError("mid-mutation crash")

    client = _client_for(app, created["chair"][0])
    client.get("/papers")  # warm the fragment cache
    assert len(form.caches.fragments) > 0
    with pytest.raises(RuntimeError):
        client.post("/explode")
    # The failed handler may have mutated bus-invisible state before
    # crashing; the viewer-facing caches must have been dropped anyway.
    assert len(form.caches.fragments) == 0
    assert len(form.caches.labels) == 0


def test_fragment_cache_off_by_default():
    form = setup_conf(Database(MemoryBackend()))
    try:
        created = seed_conference(form, papers=2)
        app = build_conf_app(form)
        client = _client_for(app, created["chair"][0])
        client.get("/papers")
        client.get("/papers")
        assert form.caches.fragments.stats.puts == 0
    finally:
        ConferencePhase.reset()
