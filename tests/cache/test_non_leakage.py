"""Non-leakage: cached results concretised per-viewer equal uncached results.

This is the subsystem's central safety property.  Two identical conference
databases are seeded -- one FORM with caching on, one with caching off --
and every page-shaped query is compared viewer by viewer, for **every** user
in the seed, with the caches deliberately warmed by *other* viewers first.
Any facet leaking through a shared cache entry (one viewer seeing another's
secret, or another's public placeholder) breaks the equality.
"""

import pytest

from repro.apps.conf.models import (
    ConferencePhase,
    ConfUser,
    Paper,
    Review,
)
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import setup_conf
from repro.cache import CacheConfig
from repro.db import Database, MemoryBackend
from repro.form import use_form, viewer_context

SEED_PAPERS = 6
SEED_PC = 3


@pytest.fixture
def two_stacks():
    cached = setup_conf(Database(MemoryBackend()))
    uncached = setup_conf(Database(MemoryBackend()), cache_config=CacheConfig.disabled())
    created_cached = seed_conference(cached, papers=SEED_PAPERS, pc_members=SEED_PC)
    created_uncached = seed_conference(uncached, papers=SEED_PAPERS, pc_members=SEED_PC)
    yield cached, uncached, created_cached, created_uncached
    ConferencePhase.reset()


def _all_viewers(created):
    return created["chair"] + created["pc"] + created["users"]


def _observe(form, viewer):
    """Everything a viewer can observe on the app's pages, serialised."""
    with use_form(form), viewer_context(viewer):
        papers = [
            (
                p.jid,
                p.title,
                getattr(p.author, "name", None) if p.author is not None else None,
                bool(p.accepted),
            )
            for p in Paper.objects.all().fetch()
        ]
        users = [
            (u.jid, u.name, u.affiliation, u.email)
            for u in ConfUser.objects.all().fetch()
        ]
        reviews = [
            (
                r.jid,
                r.contents,
                r.score,
                getattr(r.reviewer, "name", None) if r.reviewer is not None else None,
            )
            for r in Review.objects.all().fetch()
        ]
        singles = [
            (
                p.title,
                getattr(p.author, "name", None) if p.author is not None else None,
            )
            for p in (Paper.objects.get(jid=jid) for jid in range(1, SEED_PAPERS + 1))
            if p is not None
        ]
    return {
        "papers": sorted(papers),
        "users": sorted(users),
        "reviews": sorted(reviews),
        "singles": sorted(singles),
    }


def test_cached_results_equal_uncached_for_every_viewer(two_stacks):
    cached, uncached, created_cached, created_uncached = two_stacks
    viewers_cached = _all_viewers(created_cached)
    viewers_uncached = _all_viewers(created_uncached)
    assert [v.jid for v in viewers_cached] == [v.jid for v in viewers_uncached]

    # Warm every cache layer with every viewer's traffic first, so each
    # comparison below runs against entries populated by *other* viewers.
    for viewer in viewers_cached:
        _observe(cached, viewer)

    for viewer_c, viewer_u in zip(viewers_cached, viewers_uncached):
        assert _observe(cached, viewer_c) == _observe(uncached, viewer_u), (
            f"cached view for {viewer_c.name} diverged from uncached"
        )


def test_cached_results_equal_uncached_after_phase_change(two_stacks):
    cached, uncached, created_cached, created_uncached = two_stacks
    for viewer in _all_viewers(created_cached):
        _observe(cached, viewer)  # warm under the submission phase
    ConferencePhase.set(ConferencePhase.FINAL)
    for viewer_c, viewer_u in zip(
        _all_viewers(created_cached), _all_viewers(created_uncached)
    ):
        assert _observe(cached, viewer_c) == _observe(uncached, viewer_u)


def test_author_identity_never_leaks_between_authors(two_stacks):
    """A directed leak probe on top of the structural equality."""
    cached, _uncached, created, _ = two_stacks
    author0, author1 = created["users"][0], created["users"][1]
    with use_form(cached):
        with viewer_context(author0):
            own = Paper.objects.get(title="Paper 0")
            assert own.author is not None and own.author.name == author0.name
        # author1 queries the same paper right after author0 warmed the
        # caches; the authorship must stay anonymous.
        with viewer_context(author1):
            other = Paper.objects.get(title="Paper 0")
            assert other.author is None
        # And the public placeholder cached for author1 must not blind
        # author0 on a subsequent read.
        with viewer_context(author0):
            again = Paper.objects.get(title="Paper 0")
            assert again.author is not None and again.author.name == author0.name


def test_email_visibility_per_viewer_with_warm_caches(two_stacks):
    cached, _uncached, created, _ = two_stacks
    chair = created["chair"][0]
    author0 = created["users"][0]
    with use_form(cached):
        with viewer_context(chair):
            seen_by_chair = {u.name: u.email for u in ConfUser.objects.all().fetch()}
        with viewer_context(author0):
            seen_by_author = {u.name: u.email for u in ConfUser.objects.all().fetch()}
    assert seen_by_chair["author1"] == "author1@conf.org"  # chair sees all
    assert seen_by_author["author0"] == "author0@conf.org"  # own email
    assert seen_by_author["author1"] == "[hidden email]"  # others hidden
