"""Unit tests for the invalidation bus and the individual cache layers."""

import pytest

from repro.cache import (
    ALL_TABLES,
    FacetedQueryCache,
    FragmentCache,
    InvalidationBus,
    LabelResolutionCache,
    bump_policy_epoch,
    viewer_cache_key,
)
from repro.db import Database, MemoryBackend, Query
from repro.db.expr import eq


def test_bus_publishes_to_subscribers_and_counts_generations():
    bus = InvalidationBus()
    events = []
    bus.subscribe(events.append)
    bus.publish("Paper")
    bus.publish("Paper")
    bus.publish("Review")
    assert events == ["Paper", "Paper", "Review"]
    assert bus.write_generation("Paper") == 2
    assert bus.write_generation("Review") == 1
    assert bus.write_generation("Unknown") == 0


def test_bus_unsubscribe_and_publish_all():
    bus = InvalidationBus()
    events = []
    handle = bus.subscribe(events.append)
    bus.publish("A")
    bus.publish_all()
    bus.unsubscribe(handle)
    bus.publish("A")
    assert events == ["A", ALL_TABLES]
    assert bus.subscriber_count == 0


def test_bus_schema_generation_bumps():
    bus = InvalidationBus()
    assert bus.schema_generation == 0
    bus.schema_changed()
    bus.schema_changed("Dropped")
    assert bus.schema_generation == 2
    assert bus.write_generation("Dropped") == 1


def test_query_cache_keys_differ_by_query_and_schema_generation():
    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    query_a = Query(table="Paper")
    query_b = Query(table="Paper", where=eq("title", "x"))
    key_a = cache.key_for("Paper", query_a)
    assert key_a == cache.key_for("Paper", query_a)
    assert key_a != cache.key_for("Paper", query_b)
    bus.schema_changed()
    assert key_a != cache.key_for("Paper", query_a)


def test_query_cache_write_through_invalidation_per_table():
    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    paper_key = cache.key_for("Paper", Query(table="Paper"))
    review_key = cache.key_for("Review", Query(table="Review"))
    cache.put(paper_key, ["Paper"], [(1, (), {"title": "x"})])
    cache.put(review_key, ["Review"], [(1, (), {"score": 3})])
    bus.publish("Paper")
    assert cache.get(paper_key) is None
    assert cache.get(review_key) is not None
    bus.publish_all()
    assert cache.get(review_key) is None


def test_query_cache_join_entries_invalidated_by_any_joined_table():
    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    join_query = Query(table="Guest").join("Event", "event_id", "jid")
    key = cache.key_for("Guest", join_query)
    cache.put(key, ["Guest", "Event"], [(1, (), {"name": "alice"})])
    bus.publish("Event")  # write to the joined table, not the base table
    assert cache.get(key) is None


def test_query_cache_served_from_real_database_bus():
    db = Database(MemoryBackend())
    db.define_table("T", )
    cache = FacetedQueryCache()
    cache.bind(db.invalidation)
    key = cache.key_for("T", Query(table="T"))
    cache.put(key, ["T"], [(1, (), {})])
    db.insert("T")
    assert cache.get(key) is None


def test_query_cache_key_changes_after_write_to_any_involved_table():
    """Write generations in the key close the fill/write race: a result
    computed before a write lands under a key no post-write lookup uses."""
    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    plain = Query(table="Paper")
    joined = Query(table="Guest").join("Event", "event_id", "jid")
    plain_key = cache.key_for("Paper", plain)
    joined_key = cache.key_for("Guest", joined)
    bus.publish("Paper")
    assert cache.key_for("Paper", plain) != plain_key
    bus.publish("Event")  # joined table only
    assert cache.key_for("Guest", joined) != joined_key


def test_stale_put_after_concurrent_write_is_never_served():
    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    key = cache.key_for("Paper", Query(table="Paper"))
    bus.publish("Paper")  # a writer lands between read and fill
    cache.put(key, ["Paper"], [(1, (), {"title": "stale"})])
    assert cache.get(cache.key_for("Paper", Query(table="Paper"))) is None


def test_weak_subscription_releases_dead_caches():
    import gc

    bus = InvalidationBus()
    cache = FacetedQueryCache()
    cache.bind(bus)
    assert bus.subscriber_count == 1
    del cache
    gc.collect()
    bus.publish("Paper")  # first event after collection unsubscribes lazily
    assert bus.subscriber_count == 0


def test_viewer_cache_key_identities():
    class FakeUser:
        def __init__(self, jid):
            self.jid = jid

    assert viewer_cache_key(None) == ("<anonymous>",)
    assert viewer_cache_key(FakeUser(3)) == ("FakeUser", 3)
    assert viewer_cache_key(FakeUser(3)) == viewer_cache_key(FakeUser(3))
    assert viewer_cache_key(FakeUser(None)) is None  # unsaved: not cacheable
    assert viewer_cache_key(object()) is None


def test_label_cache_is_per_viewer_and_cleared_on_any_write():
    bus = InvalidationBus()
    cache = LabelResolutionCache()
    cache.bind(bus)
    cache.put("Paper.1.author", ("ConfUser", 1), True)
    cache.put("Paper.1.author", ("ConfUser", 2), False)
    assert cache.get("Paper.1.author", ("ConfUser", 1)) is True
    assert cache.get("Paper.1.author", ("ConfUser", 2)) is False
    assert cache.get("Paper.1.author", ("ConfUser", 3)) is None
    bus.publish("AnyTableAtAll")
    assert cache.get("Paper.1.author", ("ConfUser", 1)) is None


def test_label_cache_entries_expire_on_policy_epoch_bump():
    cache = LabelResolutionCache()
    cache.put("k", ("U", 1), True)
    assert cache.get("k", ("U", 1)) is True
    bump_policy_epoch()
    assert cache.get("k", ("U", 1)) is None


def test_label_cache_rejects_fills_computed_before_an_invalidation():
    """A resolution that raced a write must not be memoised after the
    write's invalidation already cleared the memo."""
    cache = LabelResolutionCache()
    generation = cache.generation  # snapshot before "resolving"
    cache.clear()  # a concurrent write lands mid-resolution
    cache.put("k", ("U", 1), True, generation=generation)
    assert cache.get("k", ("U", 1)) is None
    # A fill with a current snapshot goes through.
    cache.put("k", ("U", 1), True, generation=cache.generation)
    assert cache.get("k", ("U", 1)) is True


def test_label_cache_bus_event_also_bumps_generation():
    """The write-event path must give the same guard as explicit clear()."""
    bus = InvalidationBus()
    cache = LabelResolutionCache()
    cache.bind(bus)
    generation = cache.generation  # snapshot before "resolving"
    bus.publish("AnyTable")  # concurrent write mid-resolution
    cache.put("k", ("U", 1), True, generation=generation)
    assert cache.get("k", ("U", 1)) is None


def test_fragment_cache_bus_event_also_bumps_generation():
    bus = InvalidationBus()
    cache = FragmentCache()
    cache.bind(bus)
    key = FragmentCache.key_for("/papers", {}, ("U", 1))
    generation = cache.generation  # snapshot before "rendering"
    bus.publish("AnyTable")  # concurrent write mid-render
    cache.put(key, "<stale>", generation=generation)
    assert cache.get(key) is None


def test_label_cache_stale_epoch_snapshot_entry_not_served():
    from repro.cache import policy_epoch

    cache = LabelResolutionCache()
    epoch = policy_epoch()  # snapshot before "resolving"
    bump_policy_epoch()  # epoch bump lands mid-resolution
    cache.put("k", ("U", 1), True, epoch=epoch)
    assert cache.get("k", ("U", 1)) is None


def test_fragment_cache_rejects_fills_computed_before_an_invalidation():
    cache = FragmentCache()
    key = FragmentCache.key_for("/papers", {}, ("U", 1))
    generation = cache.generation  # snapshot before "rendering"
    cache.clear()  # concurrent write mid-render
    cache.put(key, "<stale>", generation=generation)
    assert cache.get(key) is None


def test_fragment_cache_keys_include_viewer_and_params():
    cache = FragmentCache()
    key_a = FragmentCache.key_for("/papers", {"page": 1}, ("U", 1))
    key_b = FragmentCache.key_for("/papers", {"page": 1}, ("U", 2))
    key_c = FragmentCache.key_for("/papers", {"page": 2}, ("U", 1))
    assert len({key_a, key_b, key_c}) == 3
    cache.put(key_a, "<body A>", headers={"Content-Type": "text/html"})
    assert cache.get(key_a) == ("<body A>", {"Content-Type": "text/html"})
    assert cache.get(key_b) is None


def test_fragment_cache_cleared_on_write_and_epoch():
    bus = InvalidationBus()
    cache = FragmentCache()
    cache.bind(bus)
    key = FragmentCache.key_for("/papers", {}, ("U", 1))
    cache.put(key, "<body>")
    bus.publish("Paper")
    assert cache.get(key) is None
    cache.put(key, "<body>")
    bump_policy_epoch()
    assert cache.get(key) is None
