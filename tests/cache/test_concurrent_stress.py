"""Stress the cache layers' locks from many threads at once.

The LRU core and the layered caches already take internal locks; these
tests drive them the way the threaded serving layer does -- concurrent
reads, writes and write-through invalidations -- and assert nothing tears:
no exceptions, no stale reads after an invalidating write, bounded size.
"""

import threading

from repro.cache.lru import LRUCache
from repro.db import Database, MemoryBackend
from repro.form import CharField, FORM, JModel, use_form, viewer_context


class StressDoc(JModel):
    body = CharField(max_length=128)
    shard = CharField(max_length=16)


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            target(index)
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


def test_lru_cache_parallel_mixed_operations():
    cache = LRUCache(max_entries=64)

    def hammer(index):
        for i in range(300):
            key = f"k{(index * 7 + i) % 96}"
            if i % 3 == 0:
                cache.put(key, (index, i))
            elif i % 7 == 0:
                cache.remove(key)
            else:
                cache.get(key)
            if i % 50 == 0:
                cache.purge_expired()

    _run_threads(8, hammer)
    assert len(cache) <= 64


def test_form_caches_consistent_under_concurrent_reads_and_writes():
    form = FORM(Database(MemoryBackend()))
    form.register(StressDoc)
    with use_form(form):
        for i in range(10):
            StressDoc.objects.create(body=f"seed-{i}", shard="warm")

    class Viewer:
        def __init__(self, name):
            self.name = name

    def traffic(index):
        viewer = Viewer(f"v{index}")
        with use_form(form):
            for i in range(40):
                if i % 5 == 0:
                    StressDoc.objects.create(body=f"w{index}-{i}", shard="hot")
                with viewer_context(viewer):
                    docs = StressDoc.objects.filter(shard="warm").fetch()
                    assert len(docs) == 10
                    assert all(doc.body.startswith("seed-") for doc in docs)

    _run_threads(8, traffic)

    # Post-run: the cache must not have pinned a pre-write result.
    with use_form(form):
        with viewer_context(Viewer("after")):
            hot = StressDoc.objects.filter(shard="hot").fetch()
    assert len(hot) == 8 * 8  # every write visible after the storm
