"""Shared pytest fixtures."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests without installing the package (pip editable
# installs require the `wheel` package, which offline environments may lack).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.runtime import JeevesRuntime  # noqa: E402
from repro.db.engine import Database  # noqa: E402
from repro.db.memory_backend import MemoryBackend  # noqa: E402
from repro.db.sqlite_backend import SqliteBackend  # noqa: E402
from repro.form.context import FORM  # noqa: E402


@pytest.fixture
def runtime() -> JeevesRuntime:
    """A fresh Jeeves runtime."""
    return JeevesRuntime()


@pytest.fixture(params=["memory", "sqlite"])
def database(request) -> Database:
    """A database backed by each of the two backends in turn."""
    if request.param == "memory":
        yield Database(MemoryBackend())
        return
    backend = SqliteBackend()
    yield Database(backend)
    backend.close()


@pytest.fixture
def memory_database() -> Database:
    return Database(MemoryBackend())


@pytest.fixture
def form(memory_database) -> FORM:
    """A fresh FORM over the in-memory backend."""
    return FORM(memory_database)
