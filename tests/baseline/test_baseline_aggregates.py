"""Baseline ORM aggregates: one-statement COUNT/EXISTS/SUM over ``id``.

The baseline's rows are world-independent, so its ``count()`` compiles to
``COUNT(DISTINCT id)`` (records, not join-duplicated rows) and ``exists()``
to a wrapped ``SELECT EXISTS`` -- mirroring the FORM's jid discipline
without any jvars partitioning.
"""

import pytest

from repro.baseline.fields import ForeignKey
from repro.baseline.model import BaselineDB, Model, use_baseline_db
from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.form.fields import CharField, IntegerField


class BAuthor(Model):
    name = CharField(max_length=32)


class BBook(Model):
    title = CharField(max_length=32)
    pages = IntegerField()
    author = ForeignKey("BAuthor")


@pytest.fixture(params=["memory", "sqlite"])
def baseline_db(request):
    database = Database(MemoryBackend() if request.param == "memory" else SqliteBackend())
    db = BaselineDB(database)
    db.register_all([BAuthor, BBook])
    with use_baseline_db(db):
        yield db
    database.close()


def _seed():
    ada = BAuthor.objects.create(name="ada")
    bob = BAuthor.objects.create(name="bob")
    BBook.objects.create(title="b0", pages=None, author=ada)
    BBook.objects.create(title="b1", pages=100, author=ada)
    BBook.objects.create(title="b2", pages=300, author=ada)
    BBook.objects.create(title="b3", pages=50, author=bob)
    return ada, bob


def test_count_exists_and_column_aggregates(baseline_db):
    _seed()
    queryset = BBook.objects.filter(author__name="ada")
    assert queryset.count() == 3
    assert queryset.exists() is True
    assert queryset.sum("pages") == 400
    assert queryset.avg("pages") == 200.0
    assert queryset.min("pages") == 100
    assert queryset.max("pages") == 300
    assert queryset.aggregate("pages", "COUNT") == 2  # NULL pages skipped
    assert BBook.objects.filter(author__name="zoe").exists() is False
    assert BBook.objects.filter(author__name="zoe").count() == 0
    assert BBook.objects.filter(author__name="zoe").sum("pages") is None


def test_empty_table_aggregates(baseline_db):
    assert BBook.objects.all().count() == 0
    assert BBook.objects.all().exists() is False
    assert BBook.objects.all().sum("pages") is None


def test_bounded_queryset_aggregates_id_and_pk():
    """Regression: the bounded fallback reduced ``getattr(instance, "id")``
    which is always ``None`` -- instances expose the primary key as ``pk``."""
    database = Database(MemoryBackend())
    db = BaselineDB(database)
    db.register_all([BAuthor, BBook])
    with use_baseline_db(db):
        _seed()
        bounded = BBook.objects.all().limited(2)
        assert bounded.aggregate("id", "COUNT") == 2
        assert bounded.aggregate("pk", "MAX") == 2
        assert bounded.count() == 2
        # Unbounded id aggregates agree with the SQL path.
        assert BBook.objects.all().aggregate("id", "COUNT") == 4
    database.close()


def test_unknown_field_rejected(baseline_db):
    with pytest.raises(ValueError, match="unknown field"):
        BBook.objects.all().aggregate("missing", "SUM")


def test_sum_avg_require_numeric_field(baseline_db):
    with pytest.raises(ValueError, match="numeric"):
        BBook.objects.all().sum("title")
    _seed()
    assert BBook.objects.all().min("title") == "b0"


def test_single_statement_shapes():
    backend = SqliteBackend()
    log = StatementLog(backend)
    database = Database(backend)
    db = BaselineDB(database)
    db.register_all([BAuthor, BBook])
    with use_baseline_db(db):
        _seed()
        log.clear()
        queryset = BBook.objects.filter(author__name="ada")
        assert queryset.count() == 3
        assert queryset.exists() is True
        assert queryset.sum("pages") == 400
    assert len(log.statements) == 3
    count_sql, exists_sql, sum_sql = log.statements
    assert 'COUNT(DISTINCT "BBook"."id")' in count_sql
    assert exists_sql.startswith("SELECT EXISTS(SELECT 1 FROM ")
    assert 'SUM("BBook"."pages")' in sum_sql
    database.close()
