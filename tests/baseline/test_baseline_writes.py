"""Baseline ORM set-oriented writes: ``update()``/``delete()`` pushdown.

The benchmark-parity half of the write API: the baseline ORM compiles the
same single-statement plans over ``id`` that the FORM compiles over
``jid``, so Table-style comparisons measure representation, not API shape.
"""

import pytest

from repro.baseline.fields import ForeignKey
from repro.baseline.model import BaselineDB, DoesNotExist, Model, use_baseline_db
from repro.db import Database, MemoryBackend, SqliteBackend, StatementLog
from repro.form.fields import CharField, IntegerField


class Team(Model):
    name = CharField(max_length=64)


class Player(Model):
    team = ForeignKey(Team)
    name = CharField(max_length=64)
    goals = IntegerField(default=0)


def _make_db(kind):
    backend = {
        "memory": MemoryBackend,
        "sqlite": SqliteBackend,
    }[kind]()
    db = BaselineDB(Database(backend))
    db.register_all([Team, Player])
    return db, backend


@pytest.fixture(params=["memory", "sqlite"])
def baseline_db(request):
    db, _backend = _make_db(request.param)
    with use_baseline_db(db):
        yield db
    if request.param == "sqlite":
        db.database.close()


def _seed():
    red = Team.objects.create(name="red")
    blue = Team.objects.create(name="blue")
    for index in range(4):
        Player.objects.create(team=red if index % 2 == 0 else blue,
                              name=f"p{index}", goals=index)
    return red, blue


def test_update_sets_matching_rows(baseline_db):
    red, _blue = _seed()
    changed = Player.objects.filter(team=red).update(goals=10)
    assert changed == 2
    assert {p.goals for p in Player.objects.filter(team=red)} == {10}
    assert {p.goals for p in Player.objects.filter(name="p1")} == {1}


def test_update_via_join_lookup_uses_id_subselect(baseline_db):
    _seed()
    changed = Player.objects.filter(team__name="blue").update(goals=7)
    assert changed == 2
    assert {p.goals for p in Player.objects.filter(team__name="blue")} == {7}


def test_bounded_update_and_delete(baseline_db):
    _seed()
    assert Player.objects.all().order_by("-goals").limited(1).update(goals=99) == 1
    assert Player.objects.filter(goals=99).first().name == "p3"
    assert Player.objects.all().order_by("goals").limited(2).delete() == 2
    assert sorted(p.name for p in Player.objects.all()) == ["p2", "p3"]


def test_delete_returns_row_count_and_removes_rows(baseline_db):
    red, _blue = _seed()
    assert Player.objects.filter(team=red).delete() == 2
    assert Player.objects.count() == 2


def test_update_unknown_field_raises(baseline_db):
    _seed()
    with pytest.raises(ValueError):
        Player.objects.all().update(nope=1)


def test_model_delete_clears_pk(baseline_db):
    red, _blue = _seed()
    player = Player.objects.create(team=red, name="temp")
    pk = player.pk
    player.delete()
    assert player.pk is None
    with pytest.raises(DoesNotExist):
        Player.objects.get(pk=pk)
    # A later save re-creates the record instead of resurrecting the pk.
    player.save()
    assert player.pk is not None and player.pk != pk


def test_writes_are_single_statements_on_sqlite():
    db, backend = _make_db("sqlite")
    log = StatementLog(backend)
    with use_baseline_db(db):
        _seed()
        log.clear()
        Player.objects.filter(team__name="red").update(goals=5)
        Player.objects.filter(goals=5).delete()
        assert len(log.statements) == 2
        update_sql, delete_sql = log.statements
        assert update_sql.startswith('UPDATE "Player" SET "goals" = ?')
        assert 'id IN (SELECT DISTINCT "Player"."id" FROM "Player" JOIN "Team"' in update_sql
        assert delete_sql == 'DELETE FROM "Player" WHERE goals = ?'
    db.database.close()


def test_backend_parity_for_writes():
    snapshots = []
    for kind in ("memory", "sqlite"):
        db, _backend = _make_db(kind)
        with use_baseline_db(db):
            _seed()
            Player.objects.filter(team__name="red").update(goals=5)
            Player.objects.all().order_by("goals", "name").limited(1).delete()
            rows = sorted(
                (row["name"], row["goals"], row["team_id"])
                for row in db.database.rows("Player")
            )
            snapshots.append(rows)
        if kind == "sqlite":
            db.database.close()
    assert snapshots[0] == snapshots[1]
