"""Execute every documentation example so the docs can never rot.

Runs doctest over ``docs/*.md`` and over the ``repro.db`` public-API
docstrings.  CI additionally runs ``python -m doctest docs/*.md`` and the
``examples/quickstart.py`` smoke in its docs job; this test keeps the same
guarantee inside the tier-1 suite.
"""

import doctest
import glob
import importlib
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DOCS = sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))

DOCTESTED_MODULES = [
    "repro.analysis.astutils",
    "repro.analysis.classify",
    "repro.analysis.cli",
    "repro.analysis.diagnostics",
    "repro.analysis.facts",
    "repro.analysis.readsets",
    "repro.analysis.rules",
    "repro.db.backend",
    "repro.db.engine",
    "repro.db.expr",
    "repro.db.observe",
    "repro.db.planner",
    "repro.db.query",
    "repro.db.schema",
    "repro.db.sqlgen",
    "repro.form.aggregates",
    "repro.form.writes",
    "repro.obs.metrics",
    "repro.obs.trace",
]


def test_docs_directory_is_populated():
    names = {os.path.basename(path) for path in DOCS}
    assert {"architecture.md", "faceted-semantics.md"} <= names


@pytest.mark.parametrize("path", DOCS, ids=[os.path.basename(p) for p in DOCS])
def test_markdown_examples_run(path):
    failures, tests = doctest.testfile(path, module_relative=False)
    assert tests > 0, f"{path} has no >>> examples"
    assert failures == 0


@pytest.mark.parametrize("name", DOCTESTED_MODULES)
def test_module_docstring_examples_run(name):
    module = importlib.import_module(name)
    failures, tests = doctest.testmod(module)
    assert tests > 0, f"{name} has no doctests"
    assert failures == 0
