"""Observability overhead gate: disabled instrumentation must be (near) free.

The ``repro.obs`` contract is that every span/counter call site costs one
flag check while tracing is disabled.  This benchmark measures the warm
``view_all`` page of the conference application twice:

* **disabled** -- the shipped configuration: instrumentation present,
  tracing off (the real hot path);
* **stripped** -- the same run with every obs entry point monkeypatched to
  a bare no-op, i.e. what the code would cost if the instrumentation were
  deleted outright.

and gates ``disabled <= stripped * 1.05 + epsilon``: the disabled-path
regression budget is **5%**.  ``--smoke`` runs the same workload CI-sized
without the timing assertion; ``--trace`` enables tracing for one request
and prints its per-phase span-tree breakdown instead.

Usage::

    python benchmarks/bench_obs_overhead.py            # full gate
    python benchmarks/bench_obs_overhead.py --smoke    # CI-sized, no gate
    python benchmarks/bench_obs_overhead.py --trace    # per-phase breakdown
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, List, Tuple

from repro import obs
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import build_conf_app, setup_conf
from repro.web import TestClient

BENCH_SIZE = 48
REPEATS = 200
ROUNDS = 5
#: Allowed disabled-vs-stripped regression (the acceptance bar: <5%).
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so sub-millisecond pages don't fail on noise.
EPSILON = 0.002


def _client(size: int) -> TestClient:
    form = setup_conf()
    created = seed_conference(form, papers=size, users=size, pc_members=4)
    client = TestClient(build_conf_app(form))
    viewer = created["chair"][0]
    client.force_login(viewer.jid, viewer.name)
    return client


def _page(client: TestClient) -> None:
    response = client.get("/papers")
    assert response.ok


@contextlib.contextmanager
def stripped_obs():
    """Temporarily replace every obs entry point with a bare no-op.

    What the hot path would cost with the instrumentation deleted: the call
    sites remain (they are part of the product code) but none of them
    reaches a flag check.  Restores the real functions on exit.
    """
    saved = {
        "span": obs.span,
        "add": obs.add,
        "trace": obs.trace,
        "active": obs.active,
        "record_statement": obs.record_statement,
    }

    @contextlib.contextmanager
    def noop_trace(name, **attributes):
        yield None

    obs.span = lambda name, **attributes: obs.NOOP
    obs.add = lambda name, value=1: None
    obs.trace = noop_trace
    obs.active = lambda: False
    obs.record_statement = lambda event_: None
    try:
        yield
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)


def _time_rounds(operation: Callable[[], None], repeats: int, rounds: int) -> float:
    """Best-of-rounds total time for ``repeats`` warm page loads."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            operation()
        best = min(best, time.perf_counter() - start)
    return best


def measure(size: int = BENCH_SIZE, repeats: int = REPEATS, rounds: int = ROUNDS
            ) -> Tuple[float, float]:
    """(disabled, stripped) warm view_all totals on the memory backend."""
    obs.disable()
    client = _client(size)
    _page(client)  # warm the caches once; both variants measure warm pages
    disabled = _time_rounds(lambda: _page(client), repeats, rounds)
    with stripped_obs():
        stripped = _time_rounds(lambda: _page(client), repeats, rounds)
    return disabled, stripped


def trace_breakdown(size: int = BENCH_SIZE) -> List[str]:
    """The span-tree lines of one traced warm view_all request."""
    obs.disable()
    client = _client(size)
    _page(client)  # warm
    with obs.tracing():
        trace_id = client.get("/papers").headers["X-Trace-Id"]
        trace = obs.get_trace(trace_id)
    return trace.tree_lines()


# -- pytest entries ---------------------------------------------------------------------


def test_disabled_instrumentation_overhead_within_budget():
    """The acceptance bar: disabled-tracing warm view_all regresses <5%."""
    disabled, stripped = measure()
    budget = stripped * (1 + OVERHEAD_BUDGET) + EPSILON
    assert disabled <= budget, (
        f"disabled {disabled:.4f}s exceeds stripped {stripped:.4f}s "
        f"+ {OVERHEAD_BUDGET:.0%} budget ({budget:.4f}s)"
    )


def test_traced_request_reports_per_phase_breakdown():
    lines = trace_breakdown(size=8)
    text = "\n".join(lines)
    assert "GET /papers" in text
    assert "web.view" in text and "form.fetch" in text


# -- CLI --------------------------------------------------------------------------------


def run(smoke: bool) -> int:
    repeats = 30 if smoke else REPEATS
    rounds = 2 if smoke else ROUNDS
    size = 16 if smoke else BENCH_SIZE
    disabled, stripped = measure(size, repeats, rounds)
    overhead = (disabled - stripped) / stripped if stripped else 0.0
    print(
        f"warm view_all x{repeats}: disabled={disabled * 1000:.2f}ms  "
        f"stripped={stripped * 1000:.2f}ms  overhead={overhead:+.2%}  "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
    if not smoke and disabled > stripped * (1 + OVERHEAD_BUDGET) + EPSILON:
        print(
            f"FAIL: disabled instrumentation overhead {overhead:+.2%} "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    print("ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the per-phase span-tree breakdown of one traced request",
    )
    args = parser.parse_args()
    if args.trace:
        for line in trace_breakdown():
            print(line)
        return 0
    return run(smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
