"""Table 5: the all-courses page with and without Early Pruning.

The paper shows that without Early Pruning the page that lists every course
and its instructor explodes (0.377s at 4 courses, 64s at 8, out of memory at
16), while with pruning it scales linearly up to 1024 courses.  The cause is
that each course's instructor lookup is guarded by its own label, so the
unpruned page must explore every facet combination.

The assertions check the qualitative claims: the unpruned page grows
super-linearly while the pruned page grows gently, the pruned page is much
faster at the same size, and both render identical output.  Run
``python benchmarks/bench_table5_early_pruning.py`` for the sweep (the
unpruned column stops at 8-10 courses, like the paper's "--" entries).
"""

from __future__ import annotations

from repro.apps.course import build_course_app, seed_courses, setup_courses
from repro.bench.report import format_table
from repro.bench.timing import time_request
from repro.cache import CacheConfig
from repro.web import TestClient

BENCH_SIZE_PRUNED = 64
BENCH_SIZE_UNPRUNED = 6


def _course_clients(courses, early_pruning):
    form = setup_courses(cache_config=CacheConfig.disabled())
    created = seed_courses(form, courses=courses, students_per_course=2)
    app = build_course_app(form, early_pruning=early_pruning)
    client = TestClient(app)
    viewer = created["students"][0]
    client.force_login(viewer.jid, viewer.name)
    return client


def test_table5_all_courses_with_pruning(benchmark):
    client = _course_clients(BENCH_SIZE_PRUNED, early_pruning=True)
    assert benchmark(lambda: client.get("/courses")).ok


def test_table5_all_courses_without_pruning(benchmark):
    client = _course_clients(BENCH_SIZE_UNPRUNED, early_pruning=False)
    assert benchmark(lambda: client.get("/courses")).ok


def test_table5_pruning_is_dramatically_faster_at_the_same_size():
    pruned = _course_clients(8, early_pruning=True)
    unpruned = _course_clients(8, early_pruning=False)
    pruned_time, _ = time_request(pruned, "/courses", repeats=3)
    unpruned_time, _ = time_request(unpruned, "/courses", repeats=1)
    assert unpruned_time > pruned_time * 2


def test_table5_unpruned_blowup_is_superlinear():
    small = _course_clients(4, early_pruning=False)
    large = _course_clients(8, early_pruning=False)
    small_time, _ = time_request(small, "/courses", repeats=1)
    large_time, _ = time_request(large, "/courses", repeats=1)
    # Doubling the courses should more than double the unpruned time
    # (each extra course doubles the number of facet combinations).
    assert large_time > small_time * 2


def test_table5_pruning_does_not_change_the_rendered_page():
    form = setup_courses(cache_config=CacheConfig.disabled())
    created = seed_courses(form, courses=5, students_per_course=2)
    viewer = created["students"][0]
    bodies = []
    for early_pruning in (True, False):
        client = TestClient(build_course_app(form, early_pruning=early_pruning))
        client.force_login(viewer.jid, viewer.name)
        bodies.append(client.get("/courses").body)
    assert bodies[0] == bodies[1]


def main(pruned_sizes=(4, 8, 16, 32, 64, 128, 256), unpruned_limit=10, repeats=3) -> None:
    rows = []
    for size in pruned_sizes:
        pruned_time = time_request(
            _course_clients(size, early_pruning=True), "/courses", repeats
        )[0]
        if size <= unpruned_limit:
            unpruned_time = time_request(
                _course_clients(size, early_pruning=False), "/courses", repeats=1
            )[0]
        else:
            unpruned_time = None  # the paper prints "–" here (OOM / timeout)
        rows.append([size, unpruned_time, pruned_time])
    print(
        format_table(
            ["# courses", "w/o pruning (s)", "w/ pruning (s)"],
            rows,
            title="Table 5: showing all courses, with and without Early Pruning",
        )
    )


if __name__ == "__main__":
    main()
