"""Cache hot path: cold vs warm latency for the stress-test pages.

Measures the ``view_all`` (all papers / all users) and ``single`` (one
paper) operations of the conference case study against both backends, with
the ``repro.cache`` subsystem cold (caches cleared before every iteration)
and warm (caches primed by a first run).  The paper's numbers are all
cold-path numbers; this benchmark quantifies what the policy-aware cache
layer adds on top for read-heavy traffic.

The pytest entries assert the subsystem's headline property: warm-cache
``view_all`` is at least 2x faster than cold on the in-memory backend.

Run ``python benchmarks/bench_cache_hot_path.py`` for the full table.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro.apps.conf.models import Paper, ConfUser
from repro.apps.conf.seed import seed_conference
from repro.apps.conf.views import build_conf_app, setup_conf
from repro.bench.report import format_table
from repro.cache import CacheConfig
from repro.db import Database, MemoryBackend, SqliteBackend
from repro.form import use_form, viewer_context
from repro.web import TestClient

BENCH_SIZE = 64
REPEATS = 5

BACKENDS: Dict[str, Callable[[], Database]] = {
    "memory": lambda: Database(MemoryBackend()),
    "sqlite": lambda: Database(SqliteBackend()),
}


def _stack(backend: str, size: int = BENCH_SIZE):
    """A seeded conference FORM (caching on) plus its seed objects."""
    form = setup_conf(BACKENDS[backend]())
    created = seed_conference(form, papers=size, users=size, pc_members=4)
    return form, created


def _time_best(operation: Callable[[], object], repeats: int = REPEATS) -> float:
    """Best-of-N wall time of one operation (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def measure_cold_warm(
    backend: str, operation_name: str, size: int = BENCH_SIZE
) -> Tuple[float, float]:
    """(cold, warm) best-of-N latency of one operation on one backend.

    Cold clears every cache layer before each run -- the paper-faithful
    path; warm reuses whatever the previous runs populated.
    """
    form, created = _stack(backend, size)
    viewer = created["chair"][0]

    def view_all_papers():
        with use_form(form), viewer_context(viewer):
            return Paper.objects.all().fetch()

    def view_all_users():
        with use_form(form), viewer_context(viewer):
            return ConfUser.objects.all().fetch()

    def single_paper():
        with use_form(form), viewer_context(viewer):
            return Paper.objects.get(jid=1)

    operations = {
        "view_all_papers": view_all_papers,
        "view_all_users": view_all_users,
        "single_paper": single_paper,
    }
    operation = operations[operation_name]

    def cold_run():
        form.caches.clear()
        return operation()

    cold = _time_best(cold_run)
    operation()  # prime
    warm = _time_best(operation)
    return cold, warm


# -- pytest entries ------------------------------------------------------------------


def test_warm_view_all_at_least_2x_faster_on_memory_backend():
    """The acceptance bar: warm-cache view_all >= 2x faster than cold."""
    cold, warm = measure_cold_warm("memory", "view_all_papers")
    assert warm * 2 <= cold, f"warm {warm:.6f}s not 2x faster than cold {cold:.6f}s"


def test_warm_single_faster_than_cold_on_memory_backend():
    cold, warm = measure_cold_warm("memory", "single_paper")
    assert warm <= cold


def test_warm_view_all_faster_on_sqlite_backend():
    cold, warm = measure_cold_warm("sqlite", "view_all_papers")
    assert warm < cold


def test_cache_disabled_matches_cold_behaviour():
    """CacheConfig.disabled() restores the uncached baseline: no layer is
    populated, so benchmark baselines stay paper-faithful."""
    form = setup_conf(Database(MemoryBackend()), cache_config=CacheConfig.disabled())
    created = seed_conference(form, papers=8)
    with use_form(form), viewer_context(created["chair"][0]):
        Paper.objects.all().fetch()
        Paper.objects.all().fetch()
    stats = form.caches.stats()
    assert stats["queries"]["puts"] == 0 and stats["labels"]["puts"] == 0


def test_warm_full_page_request_faster_with_fragments():
    """End-to-end page serving with the fragment cache on."""
    config = CacheConfig().with_fragments(ttl=None)
    form = setup_conf(Database(MemoryBackend()), cache_config=config)
    created = seed_conference(form, papers=BENCH_SIZE)
    client = TestClient(build_conf_app(form))
    viewer = created["pc"][0]
    client.force_login(viewer.jid, viewer.name)

    def page():
        response = client.get("/papers")
        assert response.ok
        return response

    def cold_page():
        form.caches.clear()
        return page()

    cold = _time_best(cold_page)
    page()
    warm = _time_best(page)
    assert warm < cold


# -- manual sweep ---------------------------------------------------------------------


def main(sizes=(16, 64, 256), repeats=REPEATS) -> None:
    for backend in BACKENDS:
        rows = []
        for size in sizes:
            for operation in ("view_all_papers", "view_all_users", "single_paper"):
                cold, warm = measure_cold_warm(backend, operation, size)
                speedup = cold / warm if warm else float("inf")
                rows.append([size, operation, cold, warm, f"{speedup:.1f}x"])
        print(
            format_table(
                ["size", "operation", "cold (s)", "warm (s)", "speedup"],
                rows,
                title=f"Cache hot path ({backend} backend)",
            )
        )
        print()


if __name__ == "__main__":
    main()
