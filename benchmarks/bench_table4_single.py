"""Table 4: time to view a single paper / single user profile.

The paper reports that single-record pages are constant in the database size
(~0.16s) and that Jacqueline is *on par with or faster than* Django for the
single-paper page, because Django's view iterates over related rows a second
time to apply its hand-coded checks while Jacqueline resolves each policy
once.  The assertions check constancy in N and near-parity between stacks.

Run ``python benchmarks/bench_table4_single.py`` for the full sweep.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.timing import time_request

from bench_fig9_stress import _django_conf_client, _jacqueline_conf_client

BENCH_SIZE = 128
SWEEP_SIZES = (8, 32, 128, 256)


def test_table4_single_paper_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/paper/10")).ok


def test_table4_single_paper_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/paper/10")).ok


def test_table4_single_user_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/user/6")).ok


def test_table4_single_user_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/user/6")).ok


def test_table4_single_record_time_constant_in_database_size():
    small = _jacqueline_conf_client(8)
    large = _jacqueline_conf_client(128)
    small_time, _ = time_request(small, "/paper/3", repeats=5)
    large_time, _ = time_request(large, "/paper/3", repeats=5)
    # Viewing one paper must not scale with the total number of papers.
    assert large_time <= small_time * 3 + 0.02


def test_table4_jacqueline_competitive_on_single_paper():
    jacq = _jacqueline_conf_client(64)
    django = _django_conf_client(64)
    jacq_time, _ = time_request(jacq, "/paper/5", repeats=5)
    django_time, _ = time_request(django, "/paper/5", repeats=5)
    assert jacq_time <= django_time * 3 + 0.02


def main(sizes=SWEEP_SIZES, repeats=10) -> None:
    rows_paper = []
    rows_user = []
    for size in sizes:
        jacq = _jacqueline_conf_client(size)
        django = _django_conf_client(size)
        rows_paper.append(
            [size, time_request(jacq, "/paper/3", repeats)[0], time_request(django, "/paper/3", repeats)[0]]
        )
        rows_user.append(
            [size, time_request(jacq, "/user/3", repeats)[0], time_request(django, "/user/3", repeats)[0]]
        )
    print(format_table(["# papers", "Jacqueline (s)", "Django (s)"], rows_paper,
                       title="Table 4 (left): time to view a single paper"))
    print()
    print(format_table(["# users", "Jacqueline (s)", "Django (s)"], rows_user,
                       title="Table 4 (right): time to view a single user"))


if __name__ == "__main__":
    main()
