"""Cost-aware planning: ordered-index probes vs the forced full scan.

Before the ordered indexes, every range or ORDER BY query on the memory
engine evaluated the predicate against all rows and then sorted the
matches, so a selective bounded query's cost grew linearly with table
size.  With the planner, a range + ORDER BY + LIMIT on an
``ordered=True`` column becomes a bisect probe that walks the index in
order and stops at the limit.  This benchmark verifies:

* **correctness**: the indexed results equal the forced-scan results
  (``MemoryBackend(use_indexes=False)``) and SQLite's, row for row;
* **single statement**: the range/ORDER BY fetch issues exactly one
  SELECT on SQLite, and its text is byte-identical with and without
  index DDL -- planning never changes the rendered SQL;
* **plan shape**: the memory engine's chosen path is an ordered-range
  probe that serves the ORDER BY (asserted via ``last_plan``), and
  SQLite's ``EXPLAIN QUERY PLAN`` reports the index that the captured
  ``CREATE INDEX`` DDL declared;
* **speedup**: at 10k rows the indexed range/ORDER BY query runs >=5x
  faster than the forced scan on the memory engine (full run only;
  ``--smoke`` checks shape and parity at CI size).

Usage::

    python benchmarks/bench_planner.py            # full run (10k rows)
    python benchmarks/bench_planner.py --smoke    # CI-sized run

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.db import (  # noqa: E402
    Column,
    ColumnType,
    Database,
    IndexSpec,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
    TableSchema,
    between,
)

LIMIT = 10
REPEATS = 3


def _schema() -> TableSchema:
    return TableSchema(
        "Bench",
        (
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("score", ColumnType.INTEGER, ordered=True),
            Column("payload", ColumnType.TEXT),
        ),
        indexes=(IndexSpec(("score", "id")),),
    )


def _seed(database: Database, rows: int) -> None:
    database.create_table(_schema())
    database.insert_many(
        "Bench",
        [
            {
                # Deterministic scatter with occasional NULLs, so the probe
                # has to bisect a genuinely unsorted insert order.
                "score": None if index % 97 == 0 else (index * 7919) % rows,
                "payload": f"row{index:06d}",
            }
            for index in range(rows)
        ],
    )


def _bounded_query(database: Database, low: int, high: int):
    return (
        database.query("Bench")
        .filter(between("score", low, high))
        .ordered_by("score")
        .limited(LIMIT)
    )


def _timed(fn, repeats: int = REPEATS) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    low, high = rows // 2, rows // 2 + max(rows // 100, 10)

    engines = {
        "indexed": Database(MemoryBackend()),
        "scan": Database(MemoryBackend(use_indexes=False)),
        "sqlite": Database(SqliteBackend()),
        "sqlite-noidx": Database(SqliteBackend(emit_indexes=False)),
    }
    for database in engines.values():
        _seed(database, rows)

    # -- correctness: every engine returns the same bounded ordered rows ---------
    results = {
        name: [
            (row["score"], row["id"])
            for row in database.execute(_bounded_query(database, low, high))
        ]
        for name, database in engines.items()
    }
    for name, rows_out in results.items():
        if rows_out != results["indexed"]:
            failures.append(
                f"{name}: bounded range/ORDER BY diverges from indexed memory "
                f"run: {rows_out[:3]} vs {results['indexed'][:3]}"
            )
    if not results["indexed"]:
        failures.append("the bounded range matched no rows; bad seed data")

    # -- single statement, identical SQL with and without index DDL --------------
    statements = {}
    for name in ("sqlite", "sqlite-noidx"):
        database = engines[name]
        with StatementLog(database.backend) as log:
            database.execute(_bounded_query(database, low, high))
        selects = [s for s in log.statements if s.startswith("SELECT")]
        if len(selects) != 1:
            failures.append(f"{name}: expected 1 SELECT, got {len(selects)}")
        statements[name] = selects
    if statements["sqlite"] != statements["sqlite-noidx"]:
        failures.append(
            "index DDL changed the rendered SQL: "
            f"{statements['sqlite']} vs {statements['sqlite-noidx']}"
        )

    # -- plan shape: memory chose the index; SQLite's EXPLAIN agrees -------------
    memory = engines["indexed"]
    choice = memory.backend.last_plan("Bench")
    if choice is None or choice.chosen.kind != "ordered-range":
        kind = None if choice is None else choice.chosen.kind
        failures.append(f"memory: expected an ordered-range probe, got {kind}")
    elif not choice.chosen.serves_order:
        failures.append("memory: the ordered-range probe did not serve ORDER BY")

    sqlite = engines["sqlite"]
    report = sqlite.explain(_bounded_query(sqlite, low, high))
    plan_lines = report.get("sqlite_plan", [])
    ddl = report.get("index_ddl", [])
    if not any("idx_Bench_score" in line for line in plan_lines):
        failures.append(f"sqlite: EXPLAIN QUERY PLAN is not index-backed: {plan_lines}")
    if not any('"idx_Bench_score"' in statement for statement in ddl):
        failures.append(f"sqlite: missing CREATE INDEX DDL for score: {ddl}")

    # -- speedup on the memory engine ---------------------------------------------
    indexed_time, _ = _timed(
        lambda: engines["indexed"].execute(_bounded_query(engines["indexed"], low, high))
    )
    scan_time, _ = _timed(
        lambda: engines["scan"].execute(_bounded_query(engines["scan"], low, high))
    )
    speedup = scan_time / indexed_time if indexed_time else float("inf")
    print(
        f"[memory] rows={rows} limit={LIMIT}  "
        f"indexed={indexed_time * 1000:.2f}ms  "
        f"forced-scan={scan_time * 1000:.2f}ms  speedup={speedup:.1f}x"
    )
    if not smoke and scan_time < indexed_time * 5:
        failures.append(
            f"memory: indexed range/ORDER BY only {speedup:.1f}x faster (need >=5x)"
        )

    for database in engines.values():
        database.close()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="rows to seed")
    args = parser.parse_args()
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
