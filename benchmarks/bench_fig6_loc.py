"""Figure 6: distribution of policy code, Jacqueline vs Django.

The paper reports that the Jacqueline conference manager confines its policy
code to ``models.py`` (106 policy lines total) while the Django version also
scatters checks through ``views.py`` (130 policy lines total), and that the
application-specific trusted code base shrinks because only ``models.py``
needs auditing.

The assertions check the *shape*: Jacqueline keeps every policy line in the
models and has fewer policy lines overall; the Django views contain policy
code.  Run ``python benchmarks/bench_fig6_loc.py`` to print the measured
breakdown next to the paper's numbers.
"""

from __future__ import annotations

from repro.bench.loc import LocBreakdown, figure6_breakdown
from repro.bench.report import format_table

PAPER_NUMBERS = {
    "jacqueline_policy_total": 106,
    "django_policy_total": 130,
    "django_audit_loc": 575,
    "jacqueline_audit_loc": 200,
}


def test_fig6_policy_code_distribution(benchmark):
    breakdown = benchmark(figure6_breakdown)
    jacqueline_models = breakdown[("jacqueline", "models.py")]
    jacqueline_views = breakdown[("jacqueline", "views.py")]
    django_models = breakdown[("django", "models.py")]
    django_views = breakdown[("django", "views.py")]

    # Jacqueline: policies live only in the schema; views are policy-agnostic.
    assert jacqueline_models.policy > 0
    assert jacqueline_views.policy == 0
    # Django: hand-coded checks appear in the views as well.
    assert django_views.policy > 0
    # Totals are comparable.  (The paper measures 106 vs 130 lines; our
    # Jacqueline count is slightly above our leaner Django baseline because
    # the decorator and public-value boilerplate the paper also notes as
    # "bloat" is counted as policy code -- see EXPERIMENTS.md.)
    jacqueline_total = jacqueline_models.policy + jacqueline_views.policy
    django_total = django_models.policy + django_views.policy
    assert jacqueline_total <= django_total * 1.5
    # Trusted code base: auditing Jacqueline means auditing models.py only,
    # which is smaller than auditing the Django models.py + views.py.
    assert jacqueline_models.total < django_models.total + django_views.total


def main() -> None:
    breakdown = figure6_breakdown()
    rows = []
    for (stack, artifact), counts in sorted(breakdown.items()):
        rows.append([stack, artifact, counts.policy, counts.non_policy, counts.total])
    print(
        format_table(
            ["stack", "file", "policy LoC", "non-policy LoC", "total"],
            rows,
            title="Figure 6: lines of policy code (measured)",
        )
    )
    jacqueline_total = sum(
        counts.policy for (stack, _), counts in breakdown.items() if stack == "jacqueline"
    )
    django_total = sum(
        counts.policy for (stack, _), counts in breakdown.items() if stack == "django"
    )
    print(
        f"\nPolicy LoC totals: jacqueline={jacqueline_total} (paper: 106), "
        f"django={django_total} (paper: 130)"
    )
    trusted = breakdown[("jacqueline", "models.py")].total
    audited = (
        breakdown[("django", "models.py")].total + breakdown[("django", "views.py")].total
    )
    print(
        f"Trusted application code: jacqueline models.py={trusted} lines vs "
        f"django models.py+views.py={audited} lines "
        f"({100 - round(100 * trusted / audited)}% reduction; paper: 65%)"
    )


if __name__ == "__main__":
    main()
