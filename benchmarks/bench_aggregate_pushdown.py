"""Aggregates under facets: jvars-partition pushdown vs. fetch-and-reduce.

Before the pushdown, ``count()``/``exists()`` fetched *every* matching
facet row, unmarshalled it and reduced in Python, so an aggregate's cost
grew linearly with the result it never needed.  With the pushdown they
compile to one grouped SQL statement::

    SELECT "jvars", COUNT(*) FROM "T" WHERE ... GROUP BY "jvars"

whose per-partition values merge into per-world results.  This benchmark
verifies, per backend:

* **single statement**: a ``count()`` issues exactly one SELECT, the
  grouped jvars form, and fetches no data rows (asserted on captured SQL
  against SQLite);
* **correctness**: pushdown ``count()``/``sum()`` equal the old
  fetch-and-reduce values, both backends agree, and on a small policied
  table the *faceted* count is structurally identical to
  ``facet_map(len, fetch())``;
* **speedup**: on a 10k-record table ``count()`` runs >=5x faster than the
  fetch-and-reduce path (full run only; ``--smoke`` checks shape and
  parity at CI size).

Usage::

    python benchmarks/bench_aggregate_pushdown.py            # full run (10k rows)
    python benchmarks/bench_aggregate_pushdown.py --smoke    # CI-sized run

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache import CacheConfig  # noqa: E402
from repro.core.facets import facet_map  # noqa: E402
from repro.db import (  # noqa: E402
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.form import (  # noqa: E402
    CharField,
    FORM,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)

REPEATS = 3


class BenchPlain(JModel):
    """One facet row per record (no policies): the aggregate fast path."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)
    score = IntegerField()


class BenchSecret(JModel):
    """Two facet rows per record: used for the faceted-merge parity check."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


class Viewer:
    def __init__(self, name: str) -> None:
        self.name = name


def _build_form(database: Database, rows: int) -> FORM:
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all([BenchPlain, BenchSecret])
    with use_form(form):
        BenchPlain.objects.bulk_create(
            [
                BenchPlain(title=f"title{index:06d}", owner="alice", score=index % 97)
                for index in range(rows)
            ]
        )
        for index in range(8):
            BenchSecret.objects.create(title=f"secret{index}", owner="alice")
    return form


def _timed(fn, repeats: int = REPEATS) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fetch_and_count(viewer: Viewer) -> int:
    """The pre-pushdown path: fetch every matching row, reduce in Python."""
    with viewer_context(viewer):
        return len(BenchPlain.objects.all().fetch())


def _pushdown_count(viewer: Viewer) -> int:
    with viewer_context(viewer):
        return BenchPlain.objects.all().count()


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    viewer = Viewer("alice")
    results = {}
    timings = {}

    for backend_name, backend in (
        ("memory", MemoryBackend()),
        ("sqlite", SqliteBackend()),
    ):
        database = Database(backend)
        log = StatementLog(backend) if backend_name == "sqlite" else None
        form = _build_form(database, rows)
        with use_form(form):
            if log is not None:
                log.clear()
            pushdown_time, pushdown_count = _timed(lambda: _pushdown_count(viewer))
            if log is not None:
                per_call = len(log.statements) / REPEATS
                if per_call != 1:
                    failures.append(
                        f"sqlite: expected 1 statement per count(), got {per_call}"
                    )
                grouped = 'SELECT "jvars" AS "jvars", COUNT(*) AS "COUNT(*)"'
                if not all(s.startswith(grouped) for s in log.statements):
                    failures.append(
                        f"sqlite: count() did not use the grouped jvars plan: "
                        f"{log.statements[:1]}"
                    )
            scan_time, scan_count = _timed(lambda: _fetch_and_count(viewer))

            # Value checks beyond the timed count: filtered count/sum/exists
            # against fetch-and-reduce.
            with viewer_context(viewer):
                queryset = BenchPlain.objects.filter(owner="alice")
                if queryset.count() != len(queryset.fetch()):
                    failures.append(f"{backend_name}: filtered count mismatch")
                pushdown_sum = queryset.sum("score")
                scan_sum = sum(r.score for r in queryset.fetch())
                if pushdown_sum != scan_sum:
                    failures.append(
                        f"{backend_name}: sum() {pushdown_sum} != scan {scan_sum}"
                    )
                if queryset.exists() is not True:
                    failures.append(f"{backend_name}: exists() returned False")

            # Faceted-merge parity on the policied table (small on purpose:
            # the old path builds the full faceted collection).
            secret_queryset = BenchSecret.objects.filter(title="secret0")
            faceted = secret_queryset.count()
            legacy = facet_map(len, secret_queryset.fetch())
            if faceted != legacy:
                failures.append(
                    f"{backend_name}: faceted count {faceted!r} != legacy {legacy!r}"
                )

        if pushdown_count != scan_count:
            failures.append(
                f"{backend_name}: pushdown count {pushdown_count} != "
                f"full-scan count {scan_count}"
            )
        results[backend_name] = pushdown_count
        timings[backend_name] = (pushdown_time, scan_time)
        speedup = scan_time / pushdown_time if pushdown_time else float("inf")
        print(
            f"[{backend_name}] rows={rows}  "
            f"pushdown={pushdown_time * 1000:.2f}ms  "
            f"fetch-and-reduce={scan_time * 1000:.2f}ms  speedup={speedup:.1f}x"
        )
        database.close()

    if results["memory"] != results["sqlite"]:
        failures.append(
            f"backend mismatch: memory={results['memory']} sqlite={results['sqlite']}"
        )
    if results["memory"] != rows:
        failures.append(f"expected count {rows}, got {results['memory']}")

    if not smoke:
        for backend_name, (pushdown_time, scan_time) in timings.items():
            if scan_time < pushdown_time * 5:
                failures.append(
                    f"{backend_name}: pushdown only "
                    f"{scan_time / pushdown_time:.1f}x faster (need >=5x)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="records to seed")
    args = parser.parse_args()
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
