"""Table 3: time to view the list of all papers / all users.

Paper numbers (EC2 m3.2xlarge, FunkLoad over HTTP): viewing all papers goes
from 0.241s (8 papers) to 10.729s (1024) in Jacqueline versus 0.201s-6.055s
in Django, i.e. at most ~1.75x overhead; viewing all users is close to parity
throughout.  The assertions here check the shape: both stacks scale roughly
linearly and Jacqueline's overhead on these pages stays within a small
constant factor.

Run ``python benchmarks/bench_table3_view_all.py`` for the full 8..N sweep.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.timing import time_request

from bench_fig9_stress import _django_conf_client, _jacqueline_conf_client

BENCH_SIZE = 128
SWEEP_SIZES = (8, 16, 32, 64, 128, 256)
PAPER_VIEW_ALL_PAPERS = {8: (0.241, 0.201), 1024: (10.729, 6.055)}


def test_table3_view_all_papers_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/papers")).ok


def test_table3_view_all_papers_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/papers")).ok


def test_table3_view_all_users_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/users")).ok


def test_table3_view_all_users_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    assert benchmark(lambda: client.get("/users")).ok


def test_table3_overhead_shape():
    """Jacqueline stays within a small constant factor of the baseline."""
    size = 64
    jacq = _jacqueline_conf_client(size)
    django = _django_conf_client(size)
    jacq_time, _ = time_request(jacq, "/papers", repeats=3)
    django_time, _ = time_request(django, "/papers", repeats=3)
    # The paper reports at most 1.75x; allow headroom for timer noise on a
    # shared machine while still catching asymptotic regressions.
    assert jacq_time <= django_time * 4 + 0.05


def test_table3_scaling_is_roughly_linear():
    """Quadrupling the data should not blow the time up super-linearly."""
    small = _jacqueline_conf_client(16)
    large = _jacqueline_conf_client(64)
    small_time, _ = time_request(small, "/papers", repeats=3)
    large_time, _ = time_request(large, "/papers", repeats=3)
    assert large_time <= small_time * 16 + 0.05


def main(sizes=SWEEP_SIZES, repeats=5) -> None:
    rows_papers = []
    rows_users = []
    for size in sizes:
        jacq = _jacqueline_conf_client(size)
        django = _django_conf_client(size)
        rows_papers.append(
            [size, time_request(jacq, "/papers", repeats)[0], time_request(django, "/papers", repeats)[0]]
        )
        rows_users.append(
            [size, time_request(jacq, "/users", repeats)[0], time_request(django, "/users", repeats)[0]]
        )
    print(format_table(["# papers", "Jacqueline (s)", "Django (s)"], rows_papers,
                       title="Table 3 (left): time to view all papers"))
    print()
    print(format_table(["# users", "Jacqueline (s)", "Django (s)"], rows_users,
                       title="Table 3 (right): time to view all users"))


if __name__ == "__main__":
    main()
