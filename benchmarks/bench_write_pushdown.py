"""Set-oriented writes: single-statement UPDATE/DELETE vs. per-record loops.

Before the write planners, a bulk edit was fetch -> mutate -> per-instance
``save()`` (each a full facet-row rewrite under the save lock) and
``QuerySet.delete()`` unmarshalled every matching instance to issue one
DELETE per jid.  Now non-policied writes outside a path condition compile
to one statement::

    UPDATE "T" SET col = ? WHERE jid IN (SELECT DISTINCT "jid" FROM "T" WHERE ...)
    DELETE FROM "T"        WHERE jid IN (SELECT DISTINCT "jid" FROM "T" WHERE ...)

This benchmark verifies, per backend (memory engine and SQLite):

* **single statement**: the fast-path update and delete each issue exactly
  one statement, carrying the jid subselect (asserted on captured SQL
  against SQLite);
* **correctness**: the set-oriented write leaves the table bit-for-bit
  identical (modulo row ids) to the per-record loop -- policied title
  facets preserved, non-matching records untouched -- and both backends
  agree;
* **speedup**: at 10k records (20k facet rows) the fast path is >=5x
  faster than the per-record loop for update and delete (full run only;
  ``--smoke`` checks shape and parity at CI size).

Usage::

    python benchmarks/bench_write_pushdown.py            # full run (10k rows)
    python benchmarks/bench_write_pushdown.py --smoke    # CI-sized run

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache import CacheConfig  # noqa: E402
from repro.db import (  # noqa: E402
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.form import (  # noqa: E402
    CharField,
    FORM,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)

KEEPERS = 50  # records that must survive the delete (owner="bob")


class BenchRecord(JModel):
    """Two facet rows per record: a public and a secret title."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)
    category = CharField(max_length=32, default="inbox")

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


class Viewer:
    def __init__(self, name: str) -> None:
        self.name = name


def _build_form(backend_factory, rows: int) -> Tuple[FORM, Database]:
    database = Database(backend_factory())
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all([BenchRecord])
    with use_form(form):
        BenchRecord.objects.bulk_create(
            [
                BenchRecord(title=f"title{index:06d}", owner="alice")
                for index in range(rows)
            ]
            + [
                BenchRecord(title=f"keep{index:04d}", owner="bob")
                for index in range(KEEPERS)
            ]
        )
    return form, database


def _timed(fn) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _snapshot(database: Database) -> List[Tuple]:
    """Table contents modulo row ids (the loop path re-inserts rows)."""
    return sorted(
        (row["jid"], row["jvars"], row["title"], row["owner"], row["category"])
        for row in database.rows("BenchRecord")
    )


def _loop_update(viewer: Viewer) -> int:
    """The pre-redesign path: fetch every record, mutate, save one by one."""
    with viewer_context(viewer):
        records = BenchRecord.objects.filter(owner="alice").fetch()
    for record in records:
        record.category = "archived"
        record.save()
    return len(records)


def _loop_delete(viewer: Viewer) -> int:
    """The pre-redesign path: unmarshal every instance, delete per record."""
    with viewer_context(viewer):
        records = BenchRecord.objects.filter(owner="alice").fetch()
    for record in records:
        record.delete()
    return len(records)


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    viewer = Viewer("alice")
    snapshots = {}
    timings = {}

    for backend_name, backend_factory in (
        ("memory", MemoryBackend),
        ("sqlite", SqliteBackend),
    ):
        fast_form, fast_db = _build_form(backend_factory, rows)
        loop_form, loop_db = _build_form(backend_factory, rows)

        # -- bulk update: one statement vs. fetch+save loop --------------------
        log = StatementLog(fast_db) if backend_name == "sqlite" else None
        with use_form(fast_form):
            if log is not None:
                log.clear()
            fast_update_time, changed = _timed(
                lambda: BenchRecord.objects.filter(owner="alice").update(
                    category="archived"
                )
            )
            if log is not None:
                if len(log.statements) != 1:
                    failures.append(
                        f"sqlite: fast update issued {len(log.statements)} "
                        f"statements, expected 1: {log.statements[:3]}"
                    )
                elif not (
                    log.statements[0].startswith('UPDATE "BenchRecord" SET')
                    and 'jid IN (SELECT DISTINCT "jid" FROM "BenchRecord"'
                    in log.statements[0]
                ):
                    failures.append(
                        f"sqlite: update did not use the jid subselect: "
                        f"{log.statements[0]}"
                    )
        if changed != rows * 2:
            failures.append(
                f"{backend_name}: update changed {changed} rows, "
                f"expected {rows * 2} (every facet row of every alice record)"
            )
        with use_form(loop_form):
            loop_update_time, _count = _timed(lambda: _loop_update(viewer))
        if _snapshot(fast_db) != _snapshot(loop_db):
            failures.append(
                f"{backend_name}: set-oriented update diverged from the "
                f"per-record loop"
            )

        # -- bulk delete: one statement vs. per-record deletes -----------------
        with use_form(fast_form):
            if log is not None:
                log.clear()
            fast_delete_time, deleted = _timed(
                lambda: BenchRecord.objects.filter(owner="alice").delete()
            )
            if log is not None:
                deletes = [
                    s for s in log.statements if s.startswith("DELETE")
                ]
                if len(deletes) != 1 or len(log.statements) != 1:
                    failures.append(
                        f"sqlite: fast delete issued {len(log.statements)} "
                        f"statements, expected 1"
                    )
                elif 'jid IN (SELECT DISTINCT "jid" FROM "BenchRecord"' not in deletes[0]:
                    failures.append(
                        f"sqlite: delete did not use the jid subselect: {deletes[0]}"
                    )
        if deleted != rows * 2:
            failures.append(
                f"{backend_name}: delete removed {deleted} rows, expected {rows * 2}"
            )
        with use_form(loop_form):
            loop_delete_time, _count = _timed(lambda: _loop_delete(viewer))
        if _snapshot(fast_db) != _snapshot(loop_db):
            failures.append(
                f"{backend_name}: set-oriented delete diverged from the "
                f"per-record loop"
            )
        if len(_snapshot(fast_db)) != KEEPERS * 2:
            failures.append(
                f"{backend_name}: expected the {KEEPERS} bob records "
                f"({KEEPERS * 2} facet rows) to survive, found "
                f"{len(_snapshot(fast_db))} rows"
            )

        snapshots[backend_name] = _snapshot(fast_db)
        timings[backend_name] = (
            fast_update_time, loop_update_time, fast_delete_time, loop_delete_time
        )
        update_speedup = loop_update_time / fast_update_time if fast_update_time else float("inf")
        delete_speedup = loop_delete_time / fast_delete_time if fast_delete_time else float("inf")
        print(
            f"[{backend_name}] rows={rows}  "
            f"update: fast={fast_update_time * 1000:.2f}ms "
            f"loop={loop_update_time * 1000:.2f}ms ({update_speedup:.1f}x)  "
            f"delete: fast={fast_delete_time * 1000:.2f}ms "
            f"loop={loop_delete_time * 1000:.2f}ms ({delete_speedup:.1f}x)"
        )
        fast_db.close()
        loop_db.close()

    if snapshots["memory"] != snapshots["sqlite"]:
        failures.append("backend mismatch: memory and sqlite final tables differ")

    if not smoke:
        for backend_name, (fu, lu, fd, ld) in timings.items():
            if lu < fu * 5:
                failures.append(
                    f"{backend_name}: fast update only {lu / fu:.1f}x faster "
                    f"than the per-record loop (need >=5x)"
                )
            if ld < fd * 5:
                failures.append(
                    f"{backend_name}: fast delete only {ld / fd:.1f}x faster "
                    f"than the per-record loop (need >=5x)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="records to seed")
    args = parser.parse_args()
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
