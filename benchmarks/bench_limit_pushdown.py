"""Bounded faceted queries: jid-subselect pushdown vs. full-scan truncation.

Before the pushdown, ``limited(n)`` fetched the *entire* matching row set
and truncated per jid in Python, so a bounded query's cost grew linearly
with table size.  With the pushdown it compiles to one SQL statement::

    SELECT * FROM "T" WHERE jid IN
        (SELECT DISTINCT "jid" FROM "T" WHERE ... LIMIT n) ...

and stays flat as the table grows.  This benchmark verifies, per backend:

* **single statement**: the bounded fetch issues exactly one SELECT, and it
  carries the jid subselect (asserted on captured SQL against SQLite);
* **correctness**: the bounded result equals the first *n* records of the
  old full-scan-then-truncate path, and both backends return identical
  titles/jids;
* **speedup**: on a 10k-record faceted table (20k facet rows) the bounded
  query runs >=5x faster than the full-scan path (full run only; ``--smoke``
  checks shape and parity at CI size).

Usage::

    python benchmarks/bench_limit_pushdown.py            # full run (10k rows)
    python benchmarks/bench_limit_pushdown.py --smoke    # CI-sized run

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache import CacheConfig  # noqa: E402
from repro.db import (  # noqa: E402
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.db.query import limit_by_key  # noqa: E402
from repro.form import (  # noqa: E402
    CharField,
    FORM,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)

LIMIT = 5
REPEATS = 3


class BenchRecord(JModel):
    """Two facet rows per record: a public and a secret title."""

    title = CharField(max_length=64)
    owner = CharField(max_length=64)

    @staticmethod
    def jacqueline_get_public_title(record):
        return "[redacted]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(record, viewer):
        return viewer is not None and getattr(viewer, "name", None) == record.owner


class Viewer:
    def __init__(self, name: str) -> None:
        self.name = name


def _build_form(database: Database, rows: int) -> FORM:
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all([BenchRecord])
    with use_form(form):
        BenchRecord.objects.bulk_create(
            [
                BenchRecord(title=f"title{index:06d}", owner="alice")
                for index in range(rows)
            ]
        )
    return form


def _timed(fn, repeats: int = REPEATS) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _full_scan_titles(viewer: Viewer) -> List[str]:
    """The pre-pushdown path: fetch every matching record, truncate in Python."""
    with viewer_context(viewer):
        everything = BenchRecord.objects.filter(owner="alice").fetch()
    bounded = limit_by_key(everything, lambda record: record.jid, LIMIT)
    return [record.title for record in bounded]


def _pushdown_titles(viewer: Viewer) -> List[str]:
    with viewer_context(viewer):
        bounded = BenchRecord.objects.filter(owner="alice").limited(LIMIT).fetch()
    return [record.title for record in bounded]


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    viewer = Viewer("alice")
    results = {}
    timings = {}

    for backend_name, backend in (
        ("memory", MemoryBackend()),
        ("sqlite", SqliteBackend()),
    ):
        database = Database(backend)
        log = StatementLog(backend) if backend_name == "sqlite" else None
        form = _build_form(database, rows)
        with use_form(form):
            if log is not None:
                log.clear()
            pushdown_time, pushdown_titles = _timed(lambda: _pushdown_titles(viewer))
            if log is not None:
                selects = [
                    statement
                    for statement in log.statements
                    if statement.startswith("SELECT * ")
                ]
                per_fetch = len(selects) / REPEATS
                if per_fetch != 1:
                    failures.append(
                        f"sqlite: expected 1 SELECT per bounded fetch, got {per_fetch}"
                    )
                subselect = 'jid IN (SELECT DISTINCT "jid" FROM "BenchRecord"'
                if not all(subselect in statement for statement in selects):
                    failures.append(
                        f"sqlite: bounded fetch did not use the jid subselect: {selects[:1]}"
                    )
            scan_time, scan_titles = _timed(lambda: _full_scan_titles(viewer))

        if pushdown_titles != scan_titles:
            failures.append(
                f"{backend_name}: pushdown result {pushdown_titles} != "
                f"full-scan result {scan_titles}"
            )
        results[backend_name] = pushdown_titles
        timings[backend_name] = (pushdown_time, scan_time)
        speedup = scan_time / pushdown_time if pushdown_time else float("inf")
        print(
            f"[{backend_name}] rows={rows} limit={LIMIT}  "
            f"pushdown={pushdown_time * 1000:.2f}ms  "
            f"full-scan={scan_time * 1000:.2f}ms  speedup={speedup:.1f}x"
        )
        database.close()

    if results["memory"] != results["sqlite"]:
        failures.append(
            f"backend mismatch: memory={results['memory']} sqlite={results['sqlite']}"
        )
    if len(results["memory"]) != LIMIT:
        failures.append(
            f"expected {LIMIT} records, got {len(results['memory'])}"
        )

    if not smoke:
        for backend_name, (pushdown_time, scan_time) in timings.items():
            if scan_time < pushdown_time * 5:
                failures.append(
                    f"{backend_name}: pushdown only "
                    f"{scan_time / pushdown_time:.1f}x faster (need >=5x)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="records to seed")
    args = parser.parse_args()
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
