"""Concurrent load: N worker threads of mixed read/write traffic.

The paper's stress tests (FunkLoad, Section 5) hammer the conference
manager with many simultaneous clients; this benchmark reproduces that
shape against the WSGI serving layer without sockets: every worker thread
drives its own :class:`~repro.web.testclient.WsgiClient` through the full
per-request path (environ parsing, session cookie, routing, FORM, policy
resolution, template rendering).

Per configuration (backend x cache) it reports throughput and -- more
importantly -- verifies integrity under load:

* **zero cross-viewer leaks**: a logged-in author's ``/users`` page must
  show their own secret email and never any other user's (the ``email``
  policy of :mod:`repro.apps.conf.models`);
* **unique jid allocation**: every record's facet rows agree, no jid is
  shared by two logical records, and no record lost rows;
* **get_or_create atomicity**: all threads racing the same key observe one
  record.

Usage::

    python benchmarks/bench_concurrent_load.py            # full run
    python benchmarks/bench_concurrent_load.py --smoke    # CI-sized run

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
import urllib.request
from typing import Any, Dict, List, Optional

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.apps.conf.models import ConfUser, Paper  # noqa: E402
from repro.apps.conf.views import build_conf_app, setup_conf  # noqa: E402
from repro.cache import CacheConfig  # noqa: E402
from repro.db.engine import Database  # noqa: E402
from repro.form import use_form  # noqa: E402
from repro.web import BackgroundServer, WsgiClient  # noqa: E402

SHARED_KEY_NAME = "shared-singleton"


def _secret_email(index: int) -> str:
    return f"secret-{index}@load.test"


def _seed(form, workers: int, papers_per_author: int) -> None:
    """Chair + PC + one author per worker, each with a distinctive secret."""
    with use_form(form):
        ConfUser.objects.create(
            name="chair", affiliation="CMU", email="chair@load.test", level="chair"
        )
        ConfUser.objects.bulk_create(
            [
                ConfUser(
                    name=f"pc{i}", affiliation="PC", email=f"pc{i}@load.test", level="pc"
                )
                for i in range(2)
            ]
        )
        authors = ConfUser.objects.bulk_create(
            [
                ConfUser(
                    name=f"author{i}",
                    affiliation=f"Institute {i}",
                    email=_secret_email(i),
                    level="normal",
                )
                for i in range(workers)
            ]
        )
        Paper.objects.bulk_create(
            [
                Paper(title=f"Seed paper {i}-{p}", author=author)
                for i, author in enumerate(authors)
                for p in range(papers_per_author)
            ]
        )


class WorkerResult:
    def __init__(self) -> None:
        self.requests = 0
        self.submitted = 0
        self.violations: List[str] = []


def _worker(index: int, app, form, workers: int, iterations: int,
            result: WorkerResult, barrier: threading.Barrier) -> None:
    client = WsgiClient(app)
    own_secret = _secret_email(index)
    other_secrets = [_secret_email(j) for j in range(workers) if j != index]
    barrier.wait()
    response = client.post("/login", username=f"author{index}")
    result.requests += 1
    if response.status not in (200, 302):
        result.violations.append(f"worker {index}: login failed ({response.status})")
        return
    for iteration in range(iterations):
        page = client.get("/users")
        result.requests += 1
        if page.status != 200:
            result.violations.append(f"worker {index}: /users -> {page.status}")
            continue
        if own_secret not in page.body:
            result.violations.append(
                f"worker {index}: own email missing from /users (iteration {iteration})"
            )
        for secret in other_secrets:
            if secret in page.body:
                result.violations.append(
                    f"worker {index}: LEAK of {secret} on /users (iteration {iteration})"
                )
        papers = client.get("/papers")
        result.requests += 1
        if papers.status != 200:
            result.violations.append(f"worker {index}: /papers -> {papers.status}")
        if iteration % 3 == 0:
            posted = client.post(
                "/submit", title=f"load-paper w{index}-{iteration}"
            )
            result.requests += 1
            if posted.status in (200, 302):
                result.submitted += 1
            else:
                result.violations.append(
                    f"worker {index}: /submit -> {posted.status}"
                )
        if iteration % 5 == 0:
            # Race every thread on one get_or_create key through the ORM on
            # this worker thread (no request context): exactly one record
            # may ever exist.
            with use_form(form):
                ConfUser.objects.get_or_create(
                    name=SHARED_KEY_NAME,
                    defaults={"affiliation": "-", "email": "shared@load.test"},
                )


def _check_integrity(form, workers: int, papers_per_author: int,
                     submitted: int) -> List[str]:
    """Post-run invariants over the raw augmented tables."""
    problems: List[str] = []
    with use_form(form):
        user_rows = form.database.find("ConfUser")
        paper_rows = form.database.find("Paper")

    by_jid: Dict[int, set] = {}
    for row in user_rows:
        by_jid.setdefault(row["jid"], set()).add(row["name"])
    for jid, names in by_jid.items():
        if len(names) != 1:
            problems.append(f"ConfUser jid {jid} spans records {sorted(names)}")
    shared = [jid for jid, names in by_jid.items() if SHARED_KEY_NAME in names]
    if len(shared) != 1:
        problems.append(
            f"get_or_create produced {len(shared)} records for {SHARED_KEY_NAME!r}"
        )

    papers_by_jid: Dict[int, set] = {}
    for row in paper_rows:
        papers_by_jid.setdefault(row["jid"], set()).add(row["title"])
    for jid, titles in papers_by_jid.items():
        if len(titles) != 1:
            problems.append(f"Paper jid {jid} spans records {sorted(titles)}")
    expected_papers = workers * papers_per_author + submitted
    if len(papers_by_jid) != expected_papers:
        problems.append(
            f"expected {expected_papers} papers, found {len(papers_by_jid)} "
            "(lost or duplicated records under load)"
        )
    return problems


def run_config(backend: str, cache_enabled: bool, workers: int, iterations: int,
               papers_per_author: int, tmpdir: str) -> Dict[str, Any]:
    if backend == "sqlite":
        path = os.path.join(
            tmpdir, f"load-{'cached' if cache_enabled else 'uncached'}.db"
        )
        database: Optional[Database] = Database.sqlite(path)
    else:
        database = Database()
    cache_config = CacheConfig() if cache_enabled else CacheConfig.disabled()
    form = setup_conf(database, cache_config=cache_config)
    _seed(form, workers, papers_per_author)
    app = build_conf_app(form)

    results = [WorkerResult() for _ in range(workers)]
    barrier = threading.Barrier(workers)
    threads = [
        threading.Thread(
            target=_worker,
            args=(i, app, form, workers, iterations, results[i], barrier),
            name=f"load-worker-{i}",
        )
        for i in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    violations = [v for result in results for v in result.violations]
    # Count the posts that actually succeeded, not a schedule-derived guess:
    # a transient failure elsewhere in a worker's loop must not masquerade
    # as "lost records" here.
    submitted = sum(result.submitted for result in results)
    violations.extend(_check_integrity(form, workers, papers_per_author, submitted))
    requests = sum(result.requests for result in results)
    reads = "wal-reads" if form.database.backend.supports_concurrent_reads else "locked"
    form.database.close()
    return {
        "backend": backend,
        "cache": "cached" if cache_enabled else "uncached",
        "reads": reads,
        "requests": requests,
        "elapsed": elapsed,
        "rps": requests / elapsed if elapsed else float("inf"),
        "violations": violations,
    }


def run_http_check(workers: int) -> List[str]:
    """A brief real-socket pass through the bundled threaded server."""
    problems: List[str] = []
    form = setup_conf()
    _seed(form, workers, papers_per_author=1)
    app = build_conf_app(form)
    with BackgroundServer(app) as server:
        def fetch(index: int) -> None:
            try:
                for _request in range(3):
                    with urllib.request.urlopen(server.url + "/papers", timeout=10) as rsp:
                        if rsp.status != 200:
                            problems.append(f"HTTP /papers -> {rsp.status}")
            except Exception as exc:
                problems.append(f"HTTP worker {index}: {exc!r}")
        threads = [threading.Thread(target=fetch, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=24,
                        help="requests loop length per worker")
    parser.add_argument("--papers-per-author", type=int, default=2)
    parser.add_argument("--backends", default="memory,sqlite",
                        help="comma-separated: memory,sqlite")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 threads, 6 iterations)")
    parser.add_argument("--no-http", action="store_true",
                        help="skip the real-socket threaded-server check")
    args = parser.parse_args(argv)
    if args.smoke:
        args.threads = max(args.threads, 8)
        args.iterations = min(args.iterations, 6)

    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    print(
        f"concurrent load: {args.threads} threads x {args.iterations} iterations, "
        f"backends={backends}"
    )
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmpdir:
        for backend in backends:
            for cache_enabled in (True, False):
                outcome = run_config(
                    backend, cache_enabled, args.threads, args.iterations,
                    args.papers_per_author, tmpdir,
                )
                status = "ok" if not outcome["violations"] else "FAIL"
                print(
                    f"  {outcome['backend']:>7} {outcome['cache']:>8} "
                    f"({outcome['reads']}): "
                    f"{outcome['requests']:5d} requests in {outcome['elapsed']:6.2f}s "
                    f"({outcome['rps']:8.1f} req/s)  [{status}]"
                )
                for violation in outcome["violations"][:10]:
                    print(f"      - {violation}")
                if outcome["violations"]:
                    failures += 1
    if not args.no_http:
        problems = run_http_check(min(args.threads, 4))
        print(f"  threaded HTTP server: {'ok' if not problems else 'FAIL'}")
        for problem in problems[:10]:
            print(f"      - {problem}")
        if problems:
            failures += 1
    if failures:
        print(f"{failures} configuration(s) FAILED")
        return 1
    print("all configurations passed: no leaks, no duplicate jids, no lost records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
