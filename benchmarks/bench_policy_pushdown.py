"""Policy pushdown: compiled Early Pruning tiers vs the Python path.

On an eligible policied model (equality-on-viewer, own-row reads), a
viewer-context ``fetch()``/``count()`` compiles the pruning predicate into
the statement itself.  At the **direct tier** the predicate renders inline
-- no label store in the statement at all::

    SELECT ... FROM "BenchDoc"
    WHERE (jvars = ? OR ((jvars = (? || jid || ?) AND owner_id IS ?)
                      OR (jvars = (? || jid || ?) AND (NOT owner_id IS ?))))

Capping the planner (``form.policy_pushdown_tier_cap = "store"``) demotes
the same query to the **store tier**, which carries the label-assignment
subquery over ``__jacq_labels__``.  The Python path (Early Pruning label
resolution over the fetched secret facets) remains the fallback -- and
the differential oracle this benchmark compares against.

Per backend (memory engine and SQLite) this verifies:

* **single statement**: the warmed direct-tier fetch and count each issue
  exactly one statement with no label-store reference, the store-tier
  count carries the subquery, and ``explain()`` reports the executed SQL
  string and the serving tier (asserted on captured SQL against SQLite);
* **correctness**: direct- and store-tier results -- visible titles and
  the count -- match the Python oracle
  (``form.policy_pushdown_enabled = False``) bit for bit;
* **speedup**: at 10k records the direct-tier ``count()`` is >=5x faster
  than Python pruning (full run only; ``--smoke`` checks shape and parity
  at CI size).

Usage::

    python benchmarks/bench_policy_pushdown.py                  # full (10k rows)
    python benchmarks/bench_policy_pushdown.py --smoke          # CI-sized run
    python benchmarks/bench_policy_pushdown.py --fuzz-iterations=500
                               # run the differential fuzz harness instead

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import List, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache import CacheConfig  # noqa: E402
from repro.db import (  # noqa: E402
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.form import (  # noqa: E402
    CharField,
    FORM,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)
from repro.form.pushdown import STORE_TABLE  # noqa: E402


class BenchOwner(JModel):
    name = CharField(max_length=64)


class BenchDoc(JModel):
    """Two facet rows per record: a public and a secret title."""

    owner = ForeignKey(BenchOwner)
    title = CharField(max_length=64)
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[secret]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(doc, ctxt):
        return ctxt is not None and doc.owner_id == ctxt.jid


def _build_form(backend_factory, rows: int) -> Tuple[FORM, Database, object, object]:
    database = Database(backend_factory())
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all([BenchOwner, BenchDoc])
    with use_form(form):
        alice = BenchOwner.objects.create(name="alice")
        bob = BenchOwner.objects.create(name="bob")
        BenchDoc.objects.bulk_create(
            [
                BenchDoc(
                    owner=alice if index % 2 else bob,
                    title=f"title{index:06d}",
                    score=index % 10,
                )
                for index in range(rows)
            ]
        )
    return form, database, alice, bob


def _timed(fn, repeats: int = 3) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    timings = {}

    for backend_name, backend_factory in (
        ("memory", MemoryBackend),
        ("sqlite", SqliteBackend),
    ):
        form, database, alice, _bob = _build_form(backend_factory, rows)
        log = StatementLog(database.backend) if backend_name == "sqlite" else None

        # -- direct tier: inline predicate, no label store ------------------
        with use_form(form):
            with viewer_context(alice):
                BenchDoc.objects.all().fetch()  # warm the branch-key probe
                fetch_report = BenchDoc.objects.all().explain()
                count_report = BenchDoc.objects.all().explain("count")
                if log is not None:
                    log.clear()
                direct_fetch_time, direct_docs = _timed(
                    lambda: BenchDoc.objects.all().fetch(), repeats=1
                )
                if log is not None:
                    if len(log.statements) != 1:
                        failures.append(
                            f"sqlite: direct-tier fetch issued "
                            f"{len(log.statements)} statements, expected 1"
                        )
                    elif STORE_TABLE in log.statements[0]:
                        failures.append(
                            "sqlite: direct-tier fetch statement still "
                            f"references the label store: {log.statements[0]}"
                        )
                    elif log.statements != [fetch_report["sql"]]:
                        failures.append(
                            "sqlite: explain() SQL differs from the executed "
                            f"fetch: {fetch_report['sql']!r} vs "
                            f"{log.statements!r}"
                        )
                    log.clear()
                direct_count_time, direct_count = _timed(
                    lambda: BenchDoc.objects.all().count()
                )
                if log is not None:
                    statements = sorted(set(log.statements))
                    if len(statements) != 1:
                        failures.append(
                            f"sqlite: direct-tier count issued "
                            f"{len(statements)} distinct statements, expected 1"
                        )
                    elif statements != [count_report["sql"]]:
                        failures.append(
                            "sqlite: explain() SQL differs from the executed "
                            f"count: {count_report['sql']!r} vs {statements!r}"
                        )
                if fetch_report.get("mode") != "policy-pushdown":
                    failures.append(
                        f"{backend_name}: fetch explain mode is "
                        f"{fetch_report.get('mode')!r}, expected 'policy-pushdown'"
                    )
                if fetch_report.get("tier") != "direct":
                    failures.append(
                        f"{backend_name}: fetch explain tier is "
                        f"{fetch_report.get('tier')!r}, expected 'direct'"
                    )

            # -- store tier: the tier cap restores the label-store subquery -
            form.policy_pushdown_tier_cap = "store"
            with viewer_context(alice):
                BenchDoc.objects.all().fetch()  # warm the label store
                store_report = BenchDoc.objects.all().explain()
                if log is not None:
                    log.clear()
                store_fetch_time, store_docs = _timed(
                    lambda: BenchDoc.objects.all().fetch(), repeats=1
                )
                if log is not None:
                    if len(log.statements) != 1:
                        failures.append(
                            f"sqlite: store-tier fetch issued "
                            f"{len(log.statements)} statements, expected 1"
                        )
                    elif STORE_TABLE not in log.statements[0]:
                        failures.append(
                            "sqlite: store-tier fetch statement lacks the "
                            f"label-store subquery: {log.statements[0]}"
                        )
                store_count_time, store_count = _timed(
                    lambda: BenchDoc.objects.all().count()
                )
                if store_report.get("tier") != "store":
                    failures.append(
                        f"{backend_name}: capped explain tier is "
                        f"{store_report.get('tier')!r}, expected 'store'"
                    )
            form.policy_pushdown_tier_cap = None

            # -- the Python oracle ------------------------------------------
            form.policy_pushdown_enabled = False
            with viewer_context(alice):
                oracle_fetch_time, oracle_docs = _timed(
                    lambda: BenchDoc.objects.all().fetch(), repeats=1
                )
                oracle_count_time, oracle_count = _timed(
                    lambda: BenchDoc.objects.all().count()
                )
            form.policy_pushdown_enabled = True

        oracle_titles = sorted(doc.title for doc in oracle_docs)
        for tier_name, docs, count in (
            ("direct", direct_docs, direct_count),
            ("store", store_docs, store_count),
        ):
            titles = sorted(doc.title for doc in docs)
            if titles != oracle_titles:
                failures.append(
                    f"{backend_name}: {tier_name}-tier fetch diverged from "
                    f"the Python oracle ({len(titles)} vs "
                    f"{len(oracle_titles)} rows)"
                )
            if count != oracle_count:
                failures.append(
                    f"{backend_name}: {tier_name}-tier count {count} != "
                    f"oracle count {oracle_count}"
                )

        timings[backend_name] = (direct_count_time, oracle_count_time)
        direct_speedup = (
            oracle_count_time / direct_count_time
            if direct_count_time
            else float("inf")
        )
        fetch_speedup = (
            oracle_fetch_time / direct_fetch_time
            if direct_fetch_time
            else float("inf")
        )
        print(
            f"[{backend_name}] rows={rows}  count: "
            f"direct={direct_count_time * 1000:.2f}ms "
            f"store={store_count_time * 1000:.2f}ms "
            f"python={oracle_count_time * 1000:.2f}ms "
            f"({direct_speedup:.1f}x)  fetch: "
            f"direct={direct_fetch_time * 1000:.2f}ms "
            f"store={store_fetch_time * 1000:.2f}ms "
            f"python={oracle_fetch_time * 1000:.2f}ms ({fetch_speedup:.1f}x)"
        )
        database.close()

    if not smoke:
        for backend_name, (pushed, oracle) in timings.items():
            if oracle < pushed * 5:
                failures.append(
                    f"{backend_name}: direct-tier count only "
                    f"{oracle / pushed:.1f}x faster than Python pruning "
                    f"(need >=5x)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def run_fuzz(iterations: int) -> int:
    """Delegate to the differential fuzz harness at the given depth."""
    env = dict(os.environ)
    env["FUZZ_ITERATIONS"] = str(iterations)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            os.path.join("tests", "fuzz", "test_policy_parity.py"),
            "-q",
        ],
        env=env,
        cwd=_ROOT,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="records to seed")
    parser.add_argument(
        "--fuzz-iterations",
        type=int,
        default=None,
        help="run the differential fuzz harness at this depth instead",
    )
    args = parser.parse_args()
    if args.fuzz_iterations is not None:
        return run_fuzz(args.fuzz_iterations)
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
