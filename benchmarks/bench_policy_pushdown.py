"""Policy pushdown: Early Pruning compiled into SQL vs the Python path.

On an eligible policied model (equality-on-viewer, own-row reads), a
viewer-context ``fetch()``/``count()`` compiles the pruning predicate into
the statement itself::

    SELECT ... FROM "BenchDoc"
    WHERE (jvars = ? OR jvars IN (SELECT jvars FROM "__jacq_labels__"
                                  WHERE table_name = ? AND viewer_key = ?))

so the engine prunes and the read is **one** statement.  The Python path
(Early Pruning label resolution over the fetched secret facets) remains
the fallback -- and the differential oracle this benchmark compares
against.

Per backend (memory engine and SQLite) this verifies:

* **single statement**: the warmed pushdown fetch and count each issue
  exactly one statement carrying the label-store subquery, and
  ``explain()`` reports the identical SQL string (asserted on captured
  SQL against SQLite);
* **correctness**: pushdown results -- visible titles and the count --
  match the Python oracle (``form.policy_pushdown_enabled = False``)
  bit for bit;
* **speedup**: at 10k records the pushed-down ``count()`` is >=5x faster
  than Python pruning (full run only; ``--smoke`` checks shape and parity
  at CI size).

Usage::

    python benchmarks/bench_policy_pushdown.py                  # full (10k rows)
    python benchmarks/bench_policy_pushdown.py --smoke          # CI-sized run
    python benchmarks/bench_policy_pushdown.py --fuzz-iterations=500
                               # run the differential fuzz harness instead

Exits non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import List, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cache import CacheConfig  # noqa: E402
from repro.db import (  # noqa: E402
    Database,
    MemoryBackend,
    SqliteBackend,
    StatementLog,
)
from repro.form import (  # noqa: E402
    CharField,
    FORM,
    ForeignKey,
    IntegerField,
    JModel,
    jacqueline,
    label_for,
    use_form,
    viewer_context,
)
from repro.form.pushdown import STORE_TABLE  # noqa: E402


class BenchOwner(JModel):
    name = CharField(max_length=64)


class BenchDoc(JModel):
    """Two facet rows per record: a public and a secret title."""

    owner = ForeignKey(BenchOwner)
    title = CharField(max_length=64)
    score = IntegerField(default=0)

    @staticmethod
    def jacqueline_get_public_title(doc):
        return "[secret]"

    @staticmethod
    @label_for("title")
    @jacqueline
    def jacqueline_restrict_title(doc, ctxt):
        return ctxt is not None and doc.owner_id == ctxt.jid


def _build_form(backend_factory, rows: int) -> Tuple[FORM, Database, object, object]:
    database = Database(backend_factory())
    form = FORM(database, cache_config=CacheConfig.disabled())
    form.register_all([BenchOwner, BenchDoc])
    with use_form(form):
        alice = BenchOwner.objects.create(name="alice")
        bob = BenchOwner.objects.create(name="bob")
        BenchDoc.objects.bulk_create(
            [
                BenchDoc(
                    owner=alice if index % 2 else bob,
                    title=f"title{index:06d}",
                    score=index % 10,
                )
                for index in range(rows)
            ]
        )
    return form, database, alice, bob


def _timed(fn, repeats: int = 3) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(rows: int, smoke: bool) -> int:
    failures: List[str] = []
    timings = {}

    for backend_name, backend_factory in (
        ("memory", MemoryBackend),
        ("sqlite", SqliteBackend),
    ):
        form, database, alice, _bob = _build_form(backend_factory, rows)
        log = StatementLog(database.backend) if backend_name == "sqlite" else None
        with use_form(form):
            with viewer_context(alice):
                BenchDoc.objects.all().fetch()  # warm the label store
                fetch_report = BenchDoc.objects.all().explain()
                count_report = BenchDoc.objects.all().explain("count")
                if log is not None:
                    log.clear()
                push_fetch_time, pushed_docs = _timed(
                    lambda: BenchDoc.objects.all().fetch(), repeats=1
                )
                if log is not None:
                    if len(log.statements) != 1:
                        failures.append(
                            f"sqlite: pushdown fetch issued "
                            f"{len(log.statements)} statements, expected 1"
                        )
                    elif STORE_TABLE not in log.statements[0]:
                        failures.append(
                            f"sqlite: fetch statement lacks the label-store "
                            f"subquery: {log.statements[0]}"
                        )
                    elif log.statements != [fetch_report["sql"]]:
                        failures.append(
                            "sqlite: explain() SQL differs from the executed "
                            f"fetch: {fetch_report['sql']!r} vs "
                            f"{log.statements!r}"
                        )
                    log.clear()
                push_count_time, pushed_count = _timed(
                    lambda: BenchDoc.objects.all().count()
                )
                if log is not None:
                    statements = sorted(set(log.statements))
                    if len(statements) != 1:
                        failures.append(
                            f"sqlite: pushdown count issued "
                            f"{len(statements)} distinct statements, expected 1"
                        )
                    elif statements != [count_report["sql"]]:
                        failures.append(
                            "sqlite: explain() SQL differs from the executed "
                            f"count: {count_report['sql']!r} vs {statements!r}"
                        )
                if fetch_report.get("mode") != "policy-pushdown":
                    failures.append(
                        f"{backend_name}: fetch explain mode is "
                        f"{fetch_report.get('mode')!r}, expected 'policy-pushdown'"
                    )
            form.policy_pushdown_enabled = False
            with viewer_context(alice):
                oracle_fetch_time, oracle_docs = _timed(
                    lambda: BenchDoc.objects.all().fetch(), repeats=1
                )
                oracle_count_time, oracle_count = _timed(
                    lambda: BenchDoc.objects.all().count()
                )
            form.policy_pushdown_enabled = True

        pushed_titles = sorted(doc.title for doc in pushed_docs)
        oracle_titles = sorted(doc.title for doc in oracle_docs)
        if pushed_titles != oracle_titles:
            failures.append(
                f"{backend_name}: pushdown fetch diverged from the Python "
                f"oracle ({len(pushed_titles)} vs {len(oracle_titles)} rows)"
            )
        if pushed_count != oracle_count:
            failures.append(
                f"{backend_name}: pushdown count {pushed_count} != oracle "
                f"count {oracle_count}"
            )

        timings[backend_name] = (push_count_time, oracle_count_time)
        count_speedup = (
            oracle_count_time / push_count_time if push_count_time else float("inf")
        )
        fetch_speedup = (
            oracle_fetch_time / push_fetch_time if push_fetch_time else float("inf")
        )
        print(
            f"[{backend_name}] rows={rows}  "
            f"count: pushdown={push_count_time * 1000:.2f}ms "
            f"python={oracle_count_time * 1000:.2f}ms ({count_speedup:.1f}x)  "
            f"fetch: pushdown={push_fetch_time * 1000:.2f}ms "
            f"python={oracle_fetch_time * 1000:.2f}ms ({fetch_speedup:.1f}x)"
        )
        database.close()

    if not smoke:
        for backend_name, (pushed, oracle) in timings.items():
            if oracle < pushed * 5:
                failures.append(
                    f"{backend_name}: pushed-down count only "
                    f"{oracle / pushed:.1f}x faster than Python pruning "
                    f"(need >=5x)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok")
    return 1 if failures else 0


def run_fuzz(iterations: int) -> int:
    """Delegate to the differential fuzz harness at the given depth."""
    env = dict(os.environ)
    env["FUZZ_ITERATIONS"] = str(iterations)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            os.path.join("tests", "fuzz", "test_policy_parity.py"),
            "-q",
        ],
        env=env,
        cwd=_ROOT,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (no timing assertion)"
    )
    parser.add_argument("--rows", type=int, default=None, help="records to seed")
    parser.add_argument(
        "--fuzz-iterations",
        type=int,
        default=None,
        help="run the differential fuzz harness at this depth instead",
    )
    args = parser.parse_args()
    if args.fuzz_iterations is not None:
        return run_fuzz(args.fuzz_iterations)
    rows = args.rows if args.rows is not None else (300 if args.smoke else 10_000)
    return run(rows, smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
