"""Table 1: the FORM's database representation of a faceted value.

The paper's Table 1 shows one sensitive Event stored as two rows sharing a
``jid``, distinguished by ``jvars``.  The benchmark measures the cost of
creating such a record (facet expansion + two inserts) and the assertions
check the exact layout.

Run ``python benchmarks/bench_table1_representation.py`` to print the table.
"""

from __future__ import annotations

from repro.apps.calendar import Event, EventGuest, UserProfile, setup_calendar
from repro.bench.report import format_table
from repro.form import use_form


def _fresh_form():
    return setup_calendar()


def _create_party(form):
    with use_form(form):
        alice = UserProfile.objects.create(name="Alice")
        party = Event.objects.create(
            name="Carol's surprise party", location="Schloss Dagstuhl", description="shh"
        )
        EventGuest.objects.create(event=party, guest=alice)
    return party


def table1_rows(form):
    return sorted(form.database.rows("Event"), key=lambda row: row["jvars"], reverse=True)


def test_table1_two_rows_per_faceted_record(benchmark):
    form = _fresh_form()

    def create():
        form.clear()
        _create_party(form)
        return table1_rows(form)

    rows = benchmark(create)
    assert len(rows) == 2
    secret, public = rows[0], rows[1]
    assert secret["jid"] == public["jid"]
    assert secret["jvars"].endswith("=True") and public["jvars"].endswith("=False")
    assert secret["name"] == "Carol's surprise party"
    assert secret["location"] == "Schloss Dagstuhl"
    assert public["name"] == "Private event"
    assert public["location"] == "Undisclosed location"


def main() -> None:
    form = _fresh_form()
    _create_party(form)
    rows = table1_rows(form)
    print(
        format_table(
            ["id", "name", "location", "jid", "jvars"],
            [
                [row["id"], row["name"], row["location"], row["jid"], row["jvars"]]
                for row in rows
            ],
            title="Table 1: example augmented Event table",
        )
    )


if __name__ == "__main__":
    main()
