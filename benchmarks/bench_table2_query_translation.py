"""Table 2: Django vs Jacqueline translation of an ORM join query.

The paper's Table 2 shows how ``EventGuest.objects.filter(guest__name="Alice")``
translates to SQL in Django and in Jacqueline: the FORM additionally selects
the ``jid``/``jvars`` meta-data columns and joins the foreign key on ``jid``.
The assertions check those structural differences; the benchmark measures the
end-to-end faceted join query against SQLite.

Run ``python benchmarks/bench_table2_query_translation.py`` to print both
translations.
"""

from __future__ import annotations

from repro.apps.calendar import Event, EventGuest, UserProfile, setup_calendar
from repro.db import Database, SqliteBackend
from repro.db.sqlgen import django_style_sql, jacqueline_style_sql
from repro.form import use_form, viewer_context

QUERY_KWARGS = dict(
    base_table="EventGuest",
    columns=["event", "guest"],
    join_table="UserProfile",
    fk_column="guest_id",
    where_column="name",
    where_value="Alice",
)


def test_table2_translation_differences():
    django_sql = django_style_sql(**QUERY_KWARGS)
    jacqueline_sql = jacqueline_style_sql(**QUERY_KWARGS)
    assert "jvars" not in django_sql and "jid" not in django_sql
    assert "EventGuest.jid" in jacqueline_sql
    assert "EventGuest.jvars" in jacqueline_sql
    assert "UserProfile.jvars" in jacqueline_sql
    assert "ON EventGuest.guest_id = UserProfile.id" in django_sql
    assert "ON EventGuest.guest_id = UserProfile.jid" in jacqueline_sql


def test_table2_faceted_join_query(benchmark):
    form = setup_calendar(Database(SqliteBackend()))
    with use_form(form):
        alice = UserProfile.objects.create(name="Alice")
        for index in range(16):
            event = Event.objects.create(
                name=f"Event {index}", location=f"Location {index}", description=""
            )
            EventGuest.objects.create(event=event, guest=alice)

        def run_query():
            with viewer_context(alice):
                return list(EventGuest.objects.filter(guest__name="Alice"))

        result = benchmark(run_query)
    assert len(result) == 16


def main() -> None:
    print("Table 2: translated ORM queries")
    print("\nDjango translation:\n  " + django_style_sql(**QUERY_KWARGS))
    print("\nJacqueline translation:\n  " + jacqueline_style_sql(**QUERY_KWARGS))


if __name__ == "__main__":
    main()
