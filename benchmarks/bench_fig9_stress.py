"""Figure 9: stress tests for the three case studies.

* Figure 9(a): conference manager -- time to view all papers / all users as
  the number of papers / users grows, Jacqueline vs Django.
* Figure 9(b): health record manager -- time to view all records as the
  number of users grows.
* Figure 9(c): course manager -- time to view all courses as the number of
  courses grows.

The paper's curves grow linearly for both stacks with Jacqueline at most
1.75x slower.  The pytest-benchmark entries measure one representative size
per page; run ``python benchmarks/bench_fig9_stress.py`` for the full sweep
(the series the figure plots).
"""

from __future__ import annotations

from repro.apps.conf import (
    build_baseline_conf_app,
    build_conf_app,
    seed_baseline_conference,
    seed_conference,
    setup_baseline_conf,
    setup_conf,
)
from repro.apps.course import build_course_app, seed_courses, setup_courses
from repro.apps.health import build_health_app, seed_health, setup_health
from repro.bench.report import format_series
from repro.cache import CacheConfig
from repro.bench.timing import time_request
from repro.web import TestClient

BENCH_SIZE = 64
SWEEP_SIZES = (8, 16, 32, 64, 128, 256)


def _jacqueline_conf_client(papers):
    form = setup_conf(cache_config=CacheConfig.disabled())
    created = seed_conference(form, papers=papers, users=papers, pc_members=4)
    client = TestClient(build_conf_app(form))
    viewer = created["pc"][0]
    client.force_login(viewer.jid, viewer.name)
    return client


def _django_conf_client(papers):
    db = setup_baseline_conf()
    created = seed_baseline_conference(db, papers=papers, users=papers, pc_members=4)
    client = TestClient(build_baseline_conf_app(db))
    viewer = created["pc"][0]
    client.force_login(viewer.pk, viewer.name)
    return client


def _health_client(patients):
    form = setup_health(cache_config=CacheConfig.disabled())
    created = seed_health(form, patients=patients, doctors=4, insurers=2)
    client = TestClient(build_health_app(form))
    viewer = created["doctors"][0]
    client.force_login(viewer.jid, viewer.name)
    return client


def _course_client(courses):
    form = setup_courses(cache_config=CacheConfig.disabled())
    created = seed_courses(form, courses=courses, students_per_course=2)
    client = TestClient(build_course_app(form))
    viewer = created["students"][0]
    client.force_login(viewer.jid, viewer.name)
    return client


def test_fig9a_conference_all_papers_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/papers"))
    assert response.ok


def test_fig9a_conference_all_papers_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/papers"))
    assert response.ok


def test_fig9a_conference_all_users_jacqueline(benchmark):
    client = _jacqueline_conf_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/users"))
    assert response.ok


def test_fig9a_conference_all_users_django(benchmark):
    client = _django_conf_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/users"))
    assert response.ok


def test_fig9b_health_all_records(benchmark):
    client = _health_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/records"))
    assert response.ok


def test_fig9c_course_all_courses(benchmark):
    client = _course_client(BENCH_SIZE)
    response = benchmark(lambda: client.get("/courses"))
    assert response.ok


def main(sizes=SWEEP_SIZES, repeats=5) -> None:
    series = {
        "Fig 9a view-all-papers (Jacqueline)": {},
        "Fig 9a view-all-papers (Django)": {},
        "Fig 9a view-all-users (Jacqueline)": {},
        "Fig 9a view-all-users (Django)": {},
        "Fig 9b view-all-records (Jacqueline)": {},
        "Fig 9c view-all-courses (Jacqueline)": {},
    }
    for size in sizes:
        jacq = _jacqueline_conf_client(size)
        django = _django_conf_client(size)
        series["Fig 9a view-all-papers (Jacqueline)"][size] = time_request(jacq, "/papers", repeats)[0]
        series["Fig 9a view-all-papers (Django)"][size] = time_request(django, "/papers", repeats)[0]
        series["Fig 9a view-all-users (Jacqueline)"][size] = time_request(jacq, "/users", repeats)[0]
        series["Fig 9a view-all-users (Django)"][size] = time_request(django, "/users", repeats)[0]
        series["Fig 9b view-all-records (Jacqueline)"][size] = time_request(
            _health_client(size), "/records", repeats
        )[0]
        series["Fig 9c view-all-courses (Jacqueline)"][size] = time_request(
            _course_client(size), "/courses", repeats
        )[0]
    for name, points in series.items():
        print(format_series(name, points))
        print()


if __name__ == "__main__":
    main()
